//! Discrete-event scheduler.
//!
//! [`TimerWheel`] is the production event scheduler: a hierarchical timer
//! wheel (calendar queue) keyed by [`SimTime`]. Near-future events live in
//! fixed-width per-millisecond wheels (O(1) schedule/cancel, amortized-O(1)
//! advance), far-future events in a sorted overflow list, and all the events
//! that share a timestamp drain as one FIFO batch through
//! [`TimerWheel::pop_due_batch`]. Handles are slab-recycled, so a long run
//! reuses a bounded set of slots instead of growing a live-handle space.
//!
//! [`EventQueue`] is the binary-heap reference implementation of the same
//! contract: a priority queue of `(SimTime, payload)` pairs popped in
//! non-decreasing time order, with FIFO ordering between events that share
//! the same timestamp (insertion order breaks ties). The simulation world
//! keeps it behind a doc-hidden switch so equivalence suites can pin the
//! wheel's pop order — and therefore every report — against it. Scheduled
//! events can be cancelled through the [`EventHandle`] returned at insertion
//! time, which is how protocol timers (heartbeats, back-offs, garbage
//! collection) are disarmed in both implementations.
//!
//! [`IndexedMinQueue`] is the companion structure for *per-entity* deadlines:
//! each id in `0..n` holds at most one `SimTime` key, the key can be decreased
//! or increased in O(log n) by id, and the queue pops `(key, id)` pairs in
//! ascending order with the lowest id first among equal keys. The simulation
//! world uses it to schedule one wake event per node instead of scanning every
//! node on every mobility tick.
//!
//! # Examples
//!
//! ```
//! use simkit::scheduler::EventQueue;
//! use simkit::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2), "second");
//! let h = q.schedule(SimTime::from_secs(1), "first");
//! q.schedule(SimTime::from_secs(3), "third");
//! q.cancel(h);
//!
//! assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
//! assert_eq!(q.pop(), Some((SimTime::from_secs(3), "third")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet, VecDeque};

/// Opaque handle identifying a scheduled event, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

/// A single entry in the heap. Ordered so that the *earliest* time pops first,
/// and among equal times the *lowest sequence number* (earliest insertion).
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time / lowest seq is "greatest".
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cancellable discrete-event priority queue.
///
/// The queue is the heart of the simulation kernel: the simulation `World`
/// repeatedly pops the earliest pending event, advances the virtual clock to its
/// timestamp and dispatches it.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// Returns a handle that can later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now cancelled,
    /// `false` if it had already been cancelled.
    ///
    /// Cancellation is lazy, so — unlike [`TimerWheel::cancel`], which
    /// tracks liveness exactly — the heap cannot tell a *fired* (popped)
    /// handle from a pending one: cancelling one returns `true`, leaves a
    /// tombstone that matches nothing (reclaimed by
    /// [`EventQueue::compact`] / [`EventQueue::clear`]) and makes
    /// [`EventQueue::len`] undercount by one until then. The simulation
    /// world consults neither signal (its dense timer-slot table is the
    /// source of truth for what is armed), but embedders driving the queue
    /// directly should treat the return value and `len` as advisory once
    /// they cancel handles that may already have fired.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(handle.0) {
            // We cannot cheaply know whether the seq is still in the heap; `live`
            // is corrected lazily in `pop`. Only count it if it plausibly is.
            if self.live > 0 {
                self.live -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live = self.live.saturating_sub(1);
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Drains the whole batch of events sharing the earliest pending
    /// timestamp, provided that timestamp is `<= deadline`.
    ///
    /// Appends `(handle, payload)` pairs to `out` in FIFO (insertion) order
    /// and returns the batch timestamp, or `None` (appending nothing) if the
    /// queue is empty or its earliest event is after `deadline`. The handle
    /// accompanies each payload so a consumer that drained a batch eagerly
    /// can still honor cancellations requested *while dispatching the batch*
    /// — the simulation world checks each timer event against its armed
    /// handle before acting on it.
    pub fn pop_due_batch(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<(EventHandle, E)>,
    ) -> Option<SimTime> {
        let time = self.peek_time()?;
        if time > deadline {
            return None;
        }
        while let Some(entry) = self.heap.peek() {
            if entry.time != time {
                break;
            }
            let entry = self.heap.pop().expect("peeked entry must pop");
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live = self.live.saturating_sub(1);
            out.push((EventHandle(entry.seq), entry.payload));
        }
        Some(time)
    }

    /// Alias of [`EventQueue::pop_due_batch`], mirroring
    /// [`TimerWheel::pop_due_batch_capped`]: a heap peek carries no floor
    /// state, so probing beyond the earliest event has no side effect to
    /// avoid in the first place.
    pub fn pop_due_batch_capped(
        &mut self,
        cap: SimTime,
        out: &mut Vec<(EventHandle, E)>,
    ) -> Option<SimTime> {
        self.pop_due_batch(cap, out)
    }

    /// Removes every cancelled entry still buried in the heap, releasing the
    /// tombstone set.
    ///
    /// Cancellation is lazy: a cancelled event stays in the heap (and its seq
    /// in the tombstone set) until its timestamp comes up. Long runs with
    /// heavy re-arming can accumulate tombstones for timers that will not
    /// expire for a while; compacting rebuilds the heap from the live entries
    /// in O(n). Cancels of already-popped handles also leave a tombstone that
    /// matches nothing — compaction clears those too, restoring an exact
    /// [`EventQueue::len`].
    ///
    /// The simulation world never needs this: its per-seed reset goes through
    /// [`EventQueue::clear`], which drops tombstones wholesale. `compact` is
    /// for long-lived queues that cannot restart their handle space — an
    /// embedder driving the queue directly (like the car-park example) can
    /// call it at quiet points to bound tombstone memory.
    pub fn compact(&mut self) {
        if self.cancelled.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut self.heap).into_vec();
        self.heap = entries
            .into_iter()
            .filter(|entry| !self.cancelled.remove(&entry.seq))
            .collect();
        // Whatever is left in the tombstone set referenced already-popped
        // events; drop it so recycled queues carry no dead handles.
        self.cancelled.clear();
        self.live = self.heap.len();
    }

    /// The timestamp of the earliest pending (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every pending event, every cancel tombstone, and restarts the
    /// handle space from zero.
    ///
    /// Recycled queues (a simulation world reset for the next seed of a
    /// sweep) therefore carry no dead handles across runs and the sequence
    /// space does not grow without bound over thousands of seeds. Handles
    /// issued before `clear` are invalidated and **must not** be passed to
    /// [`EventQueue::cancel`] afterwards: the sequence numbers they carry
    /// will be reissued to new events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.next_seq = 0;
        self.live = 0;
    }
}

/// Number of index bits per wheel level: each level has `1 << SLOT_BITS`
/// slots.
const SLOT_BITS: u32 = 8;
/// Slots per wheel level.
const WHEEL_SLOTS: usize = 1 << SLOT_BITS;
/// Bitmask extracting one level's slot index from a millisecond timestamp.
const SLOT_MASK: u64 = (WHEEL_SLOTS as u64) - 1;
/// Number of hierarchical levels. Level `l` slots are `256^l` ms wide, so the
/// wheels jointly cover `256^3` ms ≈ 4.66 simulated hours ahead of the
/// current floor; everything beyond overflows into the sorted far list.
const WHEEL_LEVELS: usize = 3;
/// The horizon of the wheels: events `>= base + WHEEL_SPAN_MS` go far.
const WHEEL_SPAN_MS: u64 = 1 << (SLOT_BITS * WHEEL_LEVELS as u32);
/// Words of the per-level occupancy bitmaps (256 slots / 64 bits).
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;
/// Null link of the intrusive bucket lists (no slab slot has this index: the
/// slab is indexed by `u32` and would overflow before reaching it).
const NIL: u32 = u32::MAX;

/// Lifecycle of one slab slot of the [`TimerWheel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlabState {
    /// Unused; index is on the free list.
    Free,
    /// A live event currently stored in one of the wheel levels.
    LiveWheel,
    /// A live event currently stored in the far list.
    LiveFar,
    /// Cancelled; the entry is a tombstone awaiting structural removal.
    Dead,
}

/// One slab slot: the event itself plus per-handle bookkeeping (cancellation
/// state and the generation that makes recycled indices distinguishable from
/// their previous tenants).
///
/// Events live *in the slab*, not in the buckets: each wheel bucket is an
/// intrusive singly-linked list threaded through the `next` field, so placing
/// an event — whether from a fresh schedule, a cascade or a far migration —
/// is a pointer relink that never allocates. (Per-bucket `Vec`s looked
/// harmless but never stopped allocating: bucket indices are a function of
/// absolute time, so a long run keeps reaching buckets whose `Vec` has not
/// yet grown to that instant's occupancy.)
#[derive(Debug)]
struct SlabSlot<E> {
    generation: u32,
    state: SlabState,
    /// The millisecond the event was scheduled for (its *effective* due time
    /// is clamped to the wheel floor at placement, see [`TimerWheel`] docs).
    time_ms: u64,
    /// Global insertion order; breaks ties between equal timestamps.
    seq: u64,
    /// Next slab index in the same bucket list, [`NIL`] at the tail.
    /// Meaningful only while the event is in a wheel bucket.
    next: u32,
    /// `Some` while the event is pending; taken when it fires, dropped when
    /// its tombstone is reclaimed.
    payload: Option<E>,
}

/// Where [`TimerWheel::place`] put an entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Placed {
    Wheel,
    Far,
}

/// A hierarchical timer wheel (calendar queue) with batched same-timestamp
/// dispatch.
///
/// The wheel keeps a monotone **floor** (the latest timestamp returned by
/// [`TimerWheel::peek_time`] / the batch drains): every pending event is at or
/// after the floor. Events within ~4.66 simulated hours of the floor hash
/// into one of three fixed-width wheels — level `l` has 256 slots of
/// `256^l` ms — so scheduling and cancelling are O(1) and an event cascades
/// at most twice on its way down to the millisecond-resolution level 0.
/// Events beyond that horizon wait in a far list sorted by `(time, seq)` and
/// migrate into the wheels as the floor approaches them.
///
/// **Ordering contract:** pops yield events in non-decreasing time order with
/// FIFO order between events sharing a timestamp — exactly the order of the
/// reference [`EventQueue`] (each level-0 slot covers a single millisecond,
/// and a drain sorts the slot by global insertion sequence). The batched
/// drain, [`TimerWheel::pop_due_batch`], hands over a whole same-timestamp
/// batch in one call, which is what lets the simulation world dispatch a
/// 10k-node heartbeat wave without 10k separate heap pops.
///
/// Scheduling **at or before the floor** (something the simulation world
/// never does — it only schedules at `now + delay`, and the floor never
/// passes `now`) is clamped: the event fires at the floor, in seq order
/// among the events there. [`TimerWheel::pop`] reports the clamped time.
///
/// Handles are slab-recycled: a slot freed by a pop or a tombstone cleanup is
/// reissued under a bumped generation, so stale handles never cancel a later
/// event and a bounded working set of slots serves arbitrarily long runs.
///
/// # Examples
///
/// ```
/// use simkit::scheduler::TimerWheel;
/// use simkit::time::SimTime;
///
/// let mut wheel = TimerWheel::new();
/// wheel.schedule(SimTime::from_secs(2), "b");
/// let h = wheel.schedule(SimTime::from_secs(1), "a");
/// wheel.schedule(SimTime::from_secs(2), "c");
/// wheel.cancel(h);
///
/// let mut batch = Vec::new();
/// let at = wheel.pop_due_batch(SimTime::from_secs(60), &mut batch);
/// assert_eq!(at, Some(SimTime::from_secs(2)));
/// let payloads: Vec<_> = batch.into_iter().map(|(_, p)| p).collect();
/// assert_eq!(payloads, vec!["b", "c"]);
/// ```
#[derive(Debug)]
pub struct TimerWheel<E> {
    /// The wheel floor, in ms: no pending event is earlier.
    base: u64,
    /// `WHEEL_LEVELS * WHEEL_SLOTS` bucket list heads (slab indices, [`NIL`]
    /// when empty), level-major. Fixed-size: the events themselves live in
    /// the slab, linked through [`SlabSlot::next`].
    slots: Vec<u32>,
    /// Per-level slot-occupancy bitmaps (occupied = holds entries, live or
    /// tombstoned).
    occupied: [[u64; BITMAP_WORDS]; WHEEL_LEVELS],
    /// Slab indices of events beyond the wheel horizon, sorted ascending by
    /// `(time, seq)`. A deque so migrating the front into the wheels is O(1)
    /// per entry (a sorted `Vec` paid O(len) per front removal); inserts
    /// still binary search, which far events are rare enough to afford.
    far: VecDeque<u32>,
    /// Event slab; parallel free list below.
    slab: Vec<SlabSlot<E>>,
    free: Vec<u32>,
    /// Scratch for the seq-sort of a draining batch; kept to reuse capacity.
    batch_scratch: Vec<u32>,
    /// Global insertion counter (FIFO tie-break between equal timestamps).
    next_seq: u64,
    /// Pending (non-cancelled) events, total / in the wheels / in the far
    /// list. `live == wheel_live + far_live` always.
    live: usize,
    wheel_live: usize,
    far_live: usize,
    /// The staged earliest timestamp: its level-0 slot is fully cascaded and
    /// held at `base`. Lazily re-validated because a cancel can empty it.
    staged: Option<u64>,
}

impl<E> Default for TimerWheel<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> TimerWheel<E> {
    /// Creates an empty wheel with its floor at [`SimTime::ZERO`].
    pub fn new() -> Self {
        TimerWheel {
            base: 0,
            slots: vec![NIL; WHEEL_LEVELS * WHEEL_SLOTS],
            occupied: [[0; BITMAP_WORDS]; WHEEL_LEVELS],
            far: VecDeque::new(),
            slab: Vec::new(),
            free: Vec::new(),
            batch_scratch: Vec::new(),
            next_seq: 0,
            live: 0,
            wheel_live: 0,
            far_live: 0,
            staged: None,
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Schedules `payload` to fire at absolute time `time` (clamped to the
    /// current floor, see the type docs).
    ///
    /// Returns a handle for [`TimerWheel::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slab = self.alloc_slab();
        let slot = &mut self.slab[slab as usize];
        let handle = EventHandle(pack_handle(slab, slot.generation));
        slot.time_ms = time.as_millis();
        slot.seq = seq;
        slot.payload = Some(payload);
        self.live += 1;
        match self.place(slab) {
            Placed::Wheel => self.wheel_live += 1,
            Placed::Far => self.far_live += 1,
        }
        handle
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now cancelled,
    /// `false` if it had already fired or been cancelled. O(1): the entry is
    /// tombstoned in place and reclaimed when the wheel next touches it.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        let (index, generation) = unpack_handle(handle);
        let Some(slot) = self.slab.get_mut(index as usize) else {
            return false;
        };
        if slot.generation != generation {
            return false;
        }
        match slot.state {
            SlabState::LiveWheel => {
                slot.state = SlabState::Dead;
                self.live -= 1;
                self.wheel_live -= 1;
                true
            }
            SlabState::LiveFar => {
                slot.state = SlabState::Dead;
                self.live -= 1;
                self.far_live -= 1;
                true
            }
            SlabState::Free | SlabState::Dead => false,
        }
    }

    /// The timestamp of the earliest pending event, if any.
    ///
    /// Advances the floor to that timestamp (cascading higher-level slots and
    /// migrating due far entries on the way), so a following
    /// [`TimerWheel::pop_due_batch`] or [`TimerWheel::pop`] finds the batch
    /// fully staged in level 0.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            if self.live == 0 {
                return None;
            }
            if let Some(time_ms) = self.staged {
                if self.slot_has_live((time_ms & SLOT_MASK) as usize) {
                    return Some(SimTime::from_millis(time_ms));
                }
                // A cancel emptied the staged batch; find the next one.
                self.staged = None;
            }
            if self.wheel_live == 0 {
                // Everything pending is far: jump the floor straight to the
                // far horizon instead of stepping the wheels through the gap.
                self.prune_far_front();
                debug_assert!(!self.far.is_empty(), "far_live > 0 but far list empty");
                self.base = self.base.max(self.slab[self.far[0] as usize].time_ms);
                self.migrate_far();
                continue;
            }
            self.migrate_far();
            let cursor = (self.base & SLOT_MASK) as usize;
            if let Some(index) = self.next_occupied(0, cursor) {
                let slot_time = (self.base & !SLOT_MASK) | index as u64;
                debug_assert!(slot_time >= self.base);
                if self.prune_slot(index) {
                    self.base = slot_time;
                    self.staged = Some(slot_time);
                } // else: the slot held only tombstones and is now empty.
                continue;
            }
            self.advance_boundary();
        }
    }

    /// Like [`TimerWheel::peek_time`], but **never advances the floor past
    /// `cap`**: if the earliest pending event is after `cap`, returns `None`
    /// with the floor left at or below `cap` (whereas `peek_time` would have
    /// cascaded the floor all the way to that event's timestamp).
    ///
    /// This is what lets a consumer probe the due horizon *speculatively* —
    /// e.g. a conservative-window simulator draining a run of quiet batches —
    /// and still schedule events between `cap` and the (unreached) next
    /// event afterwards without them being clamped to a prematurely raised
    /// floor. The floor invariant is unchanged: every pending event stays at
    /// or after it.
    pub fn peek_time_capped(&mut self, cap: SimTime) -> Option<SimTime> {
        let cap_ms = cap.as_millis();
        loop {
            if self.live == 0 {
                return None;
            }
            if let Some(time_ms) = self.staged {
                if self.slot_has_live((time_ms & SLOT_MASK) as usize) {
                    // A batch staged by an earlier (uncapped) peek may lie
                    // beyond the cap; leave it staged for that peek to find.
                    return (time_ms <= cap_ms).then(|| SimTime::from_millis(time_ms));
                }
                self.staged = None;
            }
            if self.base > cap_ms {
                return None;
            }
            if self.wheel_live == 0 {
                // Everything pending is far; jump only if the far horizon is
                // within the cap (the uncapped peek would jump regardless).
                self.prune_far_front();
                debug_assert!(!self.far.is_empty(), "far_live > 0 but far list empty");
                let front = self.slab[self.far[0] as usize].time_ms;
                if front > cap_ms {
                    return None;
                }
                self.base = self.base.max(front);
                self.migrate_far();
                continue;
            }
            self.migrate_far();
            let cursor = (self.base & SLOT_MASK) as usize;
            if let Some(index) = self.next_occupied(0, cursor) {
                let slot_time = (self.base & !SLOT_MASK) | index as u64;
                debug_assert!(slot_time >= self.base);
                if slot_time > cap_ms {
                    // The next occupied level-0 slot is beyond the cap. Any
                    // live entry there is too; stop without raising the floor.
                    return None;
                }
                if self.prune_slot(index) {
                    self.base = slot_time;
                    self.staged = Some(slot_time);
                }
                continue;
            }
            // This 256 ms rotation is empty. Every remaining event sits at or
            // beyond the next boundary (entries within the current rotation
            // always land in level 0), so crossing it is safe only while the
            // boundary itself is within the cap.
            if (self.base | SLOT_MASK) + 1 > cap_ms {
                return None;
            }
            self.advance_boundary();
        }
    }

    /// Drains the whole batch of events sharing the earliest pending
    /// timestamp, provided that timestamp is `<= deadline`.
    ///
    /// Appends `(handle, payload)` pairs to `out` in FIFO (seq) order and
    /// returns the batch timestamp, or `None` (appending nothing) if the
    /// wheel is empty or its earliest event is after `deadline`. As with
    /// [`EventQueue::pop_due_batch`], the handles let a consumer that drained
    /// eagerly honor cancellations issued mid-batch.
    pub fn pop_due_batch(
        &mut self,
        deadline: SimTime,
        out: &mut Vec<(EventHandle, E)>,
    ) -> Option<SimTime> {
        let time = self.peek_time()?;
        if time > deadline {
            return None;
        }
        self.drain_staged(time, out);
        Some(time)
    }

    /// Like [`TimerWheel::pop_due_batch`], but probes with
    /// [`TimerWheel::peek_time_capped`]: when nothing is due at or before
    /// `cap`, the floor is left at or below `cap` instead of being cascaded
    /// to the next pending event.
    pub fn pop_due_batch_capped(
        &mut self,
        cap: SimTime,
        out: &mut Vec<(EventHandle, E)>,
    ) -> Option<SimTime> {
        let time = self.peek_time_capped(cap)?;
        self.drain_staged(time, out);
        Some(time)
    }

    /// Drains the staged batch at `time` (the caller just peeked it).
    fn drain_staged(&mut self, time: SimTime, out: &mut Vec<(EventHandle, E)>) {
        let index = (time.as_millis() & SLOT_MASK) as usize;
        let mut batch = std::mem::take(&mut self.batch_scratch);
        batch.clear();
        let mut cursor = self.slots[index];
        self.slots[index] = NIL;
        while cursor != NIL {
            batch.push(cursor);
            cursor = self.slab[cursor as usize].next;
        }
        // Entries landed here through direct schedules and cascades in mixed
        // order; seq order is the heap's FIFO order for this timestamp.
        batch.sort_unstable_by_key(|&slab| self.slab[slab as usize].seq);
        for &slab in &batch {
            let slot = &mut self.slab[slab as usize];
            if slot.state == SlabState::LiveWheel {
                self.live -= 1;
                self.wheel_live -= 1;
                let handle = EventHandle(pack_handle(slab, slot.generation));
                let payload = slot.payload.take().expect("live event holds a payload");
                self.release_slab(slab);
                out.push((handle, payload));
            } else {
                debug_assert_eq!(slot.state, SlabState::Dead);
                self.release_slab(slab);
            }
        }
        self.batch_scratch = batch; // keep the allocation
        self.clear_occupied(0, index);
        self.staged = None;
    }

    /// Removes and returns the earliest pending event (the lowest-seq member
    /// of the staged batch), skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let time = self.peek_time()?;
        let index = (time.as_millis() & SLOT_MASK) as usize;
        // Find the lowest-seq live entry, remembering its predecessor so it
        // can be unlinked.
        let mut earliest: Option<(u32, u32)> = None; // (entry, prev or NIL)
        let mut prev = NIL;
        let mut cursor = self.slots[index];
        while cursor != NIL {
            let slot = &self.slab[cursor as usize];
            if slot.state == SlabState::LiveWheel
                && earliest.is_none_or(|(best, _)| slot.seq < self.slab[best as usize].seq)
            {
                earliest = Some((cursor, prev));
            }
            prev = cursor;
            cursor = slot.next;
        }
        let (slab, prev) = earliest.expect("staged slot must hold a live entry");
        let next = self.slab[slab as usize].next;
        if prev == NIL {
            self.slots[index] = next;
        } else {
            self.slab[prev as usize].next = next;
        }
        self.live -= 1;
        self.wheel_live -= 1;
        let payload = self.slab[slab as usize]
            .payload
            .take()
            .expect("live event holds a payload");
        self.release_slab(slab);
        if self.slots[index] == NIL {
            self.clear_occupied(0, index);
            self.staged = None;
        }
        Some((time, payload))
    }

    /// Drops every pending event and tombstone, resets the floor to
    /// [`SimTime::ZERO`] and restarts the seq space, keeping every allocation
    /// (slot buckets, slab, free list) for the next run.
    ///
    /// Occupied slab slots are released under a bumped generation, so — as
    /// with [`EventQueue::clear`] — handles issued before `clear` are
    /// invalidated and must not be cancelled afterwards.
    pub fn clear(&mut self) {
        self.slots.fill(NIL);
        self.occupied = [[0; BITMAP_WORDS]; WHEEL_LEVELS];
        self.far.clear();
        self.free.clear();
        for index in 0..self.slab.len() {
            if self.slab[index].state != SlabState::Free {
                self.slab[index].generation = self.slab[index].generation.wrapping_add(1);
                self.slab[index].state = SlabState::Free;
            }
            self.slab[index].payload = None;
            self.free.push(index as u32);
        }
        self.base = 0;
        self.next_seq = 0;
        self.live = 0;
        self.wheel_live = 0;
        self.far_live = 0;
        self.staged = None;
    }

    /// Places the event in slab slot `slab` into the wheel level covering its
    /// effective time, or into the far list. Pure placement: the live
    /// counters are the caller's business (placement is also used for
    /// cascades and migrations, which move existing entries). Never
    /// allocates on the wheel path — placing is a bucket-list relink.
    fn place(&mut self, slab: u32) -> Placed {
        let (time_ms, seq) = {
            let slot = &self.slab[slab as usize];
            (slot.time_ms, slot.seq)
        };
        let effective = time_ms.max(self.base);
        let delta = effective - self.base;
        if delta >= WHEEL_SPAN_MS {
            self.slab[slab as usize].state = SlabState::LiveFar;
            let at = self.far.partition_point(|&other| {
                let o = &self.slab[other as usize];
                (o.time_ms, o.seq) < (time_ms, seq)
            });
            self.far.insert(at, slab);
            return Placed::Far;
        }
        let level = match delta {
            d if d < 1 << SLOT_BITS => 0,
            d if d < 1 << (2 * SLOT_BITS) => 1,
            _ => 2,
        };
        let index = ((effective >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let slot = &mut self.slab[slab as usize];
        slot.state = SlabState::LiveWheel;
        slot.next = self.slots[level * WHEEL_SLOTS + index];
        self.slots[level * WHEEL_SLOTS + index] = slab;
        self.set_occupied(level, index);
        Placed::Wheel
    }

    /// Advances the floor to the next level-1 slot boundary, cascading the
    /// higher-level slots that now cover the level-0 horizon. Called only
    /// when the current level-0 rotation is exhausted.
    fn advance_boundary(&mut self) {
        let boundary = (self.base | SLOT_MASK) + 1;
        self.base = boundary;
        if (boundary >> SLOT_BITS) & SLOT_MASK == 0 {
            // Crossed a level-2 slot boundary: bring that slot down first so
            // its level-1-range entries are in place before level 1 cascades.
            let c2 = ((boundary >> (2 * SLOT_BITS)) & SLOT_MASK) as usize;
            self.cascade(2, c2);
        }
        let c1 = ((boundary >> SLOT_BITS) & SLOT_MASK) as usize;
        self.cascade(1, c1);
    }

    /// Redistributes the entries of slot `index` of `level` into the lower
    /// levels (their delta to the freshly advanced floor is below this
    /// level's slot width), reclaiming tombstones on the way.
    fn cascade(&mut self, level: usize, index: usize) {
        if self.occupied[level][index / 64] & (1 << (index % 64)) == 0 {
            return;
        }
        let mut cursor = self.slots[level * WHEEL_SLOTS + index];
        self.slots[level * WHEEL_SLOTS + index] = NIL;
        self.clear_occupied(level, index);
        while cursor != NIL {
            let next = self.slab[cursor as usize].next;
            if self.slab[cursor as usize].state == SlabState::Dead {
                self.release_slab(cursor);
            } else {
                debug_assert!(
                    self.slab[cursor as usize].time_ms.max(self.base) - self.base < WHEEL_SPAN_MS
                );
                let placed = self.place(cursor);
                debug_assert_eq!(placed, Placed::Wheel, "cascade cannot move entries far");
            }
            cursor = next;
        }
    }

    /// Moves far entries whose time has come inside the wheel horizon into
    /// the wheels, reclaiming far tombstones on the way.
    fn migrate_far(&mut self) {
        while let Some(&first) = self.far.front() {
            let slot = &self.slab[first as usize];
            if slot.state == SlabState::Dead {
                self.far.pop_front();
                self.release_slab(first);
                continue;
            }
            debug_assert!(slot.time_ms >= self.base, "far entry fell behind the floor");
            if slot.time_ms - self.base >= WHEEL_SPAN_MS {
                break;
            }
            self.far.pop_front();
            self.far_live -= 1;
            self.wheel_live += 1;
            let placed = self.place(first);
            debug_assert_eq!(placed, Placed::Wheel, "migrated entry must be near now");
        }
    }

    /// Drops cancelled entries from the head of the far list so `far[0]` is
    /// live. Only called when the wheels are empty and `far_live > 0`.
    fn prune_far_front(&mut self) {
        while let Some(&first) = self.far.front() {
            if self.slab[first as usize].state != SlabState::Dead {
                break;
            }
            self.far.pop_front();
            self.release_slab(first);
        }
    }

    /// Reclaims the tombstones of level-0 slot `index`; returns `true` if
    /// live entries remain (clearing the occupancy bit otherwise).
    fn prune_slot(&mut self, index: usize) -> bool {
        // Unlink tombstones from the head...
        let mut head = self.slots[index];
        while head != NIL && self.slab[head as usize].state == SlabState::Dead {
            let next = self.slab[head as usize].next;
            self.release_slab(head);
            head = next;
        }
        // ...then from the interior.
        let mut cursor = head;
        while cursor != NIL {
            let next = self.slab[cursor as usize].next;
            if next != NIL && self.slab[next as usize].state == SlabState::Dead {
                self.slab[cursor as usize].next = self.slab[next as usize].next;
                self.release_slab(next);
            } else {
                cursor = next;
            }
        }
        self.slots[index] = head;
        let has_live = head != NIL;
        if !has_live {
            self.clear_occupied(0, index);
        }
        has_live
    }

    /// `true` if level-0 slot `index` holds at least one live entry.
    fn slot_has_live(&self, index: usize) -> bool {
        let mut cursor = self.slots[index];
        while cursor != NIL {
            let slot = &self.slab[cursor as usize];
            if slot.state == SlabState::LiveWheel {
                return true;
            }
            cursor = slot.next;
        }
        false
    }

    /// The first occupied slot of `level` at or after `from`, if any.
    fn next_occupied(&self, level: usize, from: usize) -> Option<usize> {
        let words = &self.occupied[level];
        let mut word = from / 64;
        let mut bits = words[word] & (!0u64 << (from % 64));
        loop {
            if bits != 0 {
                return Some(word * 64 + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word == BITMAP_WORDS {
                return None;
            }
            bits = words[word];
        }
    }

    fn set_occupied(&mut self, level: usize, index: usize) {
        self.occupied[level][index / 64] |= 1 << (index % 64);
    }

    fn clear_occupied(&mut self, level: usize, index: usize) {
        self.occupied[level][index / 64] &= !(1 << (index % 64));
    }

    /// Takes a slab slot off the free list (or grows the slab). The slot's
    /// generation was bumped when it was released, so the handle minted for
    /// it cannot collide with any previously issued handle.
    fn alloc_slab(&mut self) -> u32 {
        if let Some(index) = self.free.pop() {
            index
        } else {
            let index = self.slab.len() as u32;
            self.slab.push(SlabSlot {
                generation: 0,
                state: SlabState::Free,
                time_ms: 0,
                seq: 0,
                next: NIL,
                payload: None,
            });
            index
        }
    }

    /// Returns a slab slot to the free list under a bumped generation,
    /// dropping its payload if it still holds one (tombstone reclamation).
    fn release_slab(&mut self, index: u32) {
        let slot = &mut self.slab[index as usize];
        slot.generation = slot.generation.wrapping_add(1);
        slot.state = SlabState::Free;
        slot.payload = None;
        self.free.push(index);
    }
}

/// Packs a slab index and its generation into one opaque handle word.
fn pack_handle(index: u32, generation: u32) -> u64 {
    (u64::from(generation) << 32) | u64::from(index)
}

/// The inverse of [`pack_handle`].
fn unpack_handle(handle: EventHandle) -> (u32, u32) {
    (handle.0 as u32, (handle.0 >> 32) as u32)
}

/// An indexed min-priority queue of `SimTime` deadlines keyed by small integer
/// ids.
///
/// Every id in `0..id_bound` holds **at most one** entry. [`IndexedMinQueue::set`]
/// inserts a new entry or re-keys an existing one (decrease *and* increase are
/// both O(log n), located through a positions table — no lazy deletion, no
/// duplicate entries). Pops yield `(key, id)` in ascending key order; among
/// equal keys the **lowest id** pops first, which is what lets the simulation
/// world process waking nodes in exactly the order the reference full scan
/// visits them.
///
/// # Examples
///
/// ```
/// use simkit::scheduler::IndexedMinQueue;
/// use simkit::time::SimTime;
///
/// let mut q = IndexedMinQueue::new();
/// q.set(3, SimTime::from_secs(9));
/// q.set(1, SimTime::from_secs(5));
/// q.set(3, SimTime::from_secs(2)); // decrease-key by id
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), 3)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), 1)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IndexedMinQueue {
    /// Ids, heap-ordered by `(key[id], id)`.
    heap: Vec<usize>,
    /// `pos[id]` is the index of `id` in `heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// `key[id]` is meaningful only while `pos[id] != ABSENT`.
    key: Vec<SimTime>,
}

const ABSENT: usize = usize::MAX;

impl IndexedMinQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        IndexedMinQueue::default()
    }

    /// Number of entries in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if the queue holds no entry.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every entry, keeping all allocations.
    pub fn clear(&mut self) {
        for &id in &self.heap {
            self.pos[id] = ABSENT;
        }
        self.heap.clear();
    }

    /// `true` if `id` currently holds an entry.
    pub fn contains(&self, id: usize) -> bool {
        self.pos.get(id).is_some_and(|&p| p != ABSENT)
    }

    /// The key of `id`, if it holds an entry.
    pub fn key_of(&self, id: usize) -> Option<SimTime> {
        self.contains(id).then(|| self.key[id])
    }

    /// The smallest `(key, id)` entry without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.first().map(|&id| (self.key[id], id))
    }

    /// Inserts `id` with `key`, or re-keys it if already present (both
    /// decreases and increases restore the heap order).
    pub fn set(&mut self, id: usize, key: SimTime) {
        self.grow_to(id + 1);
        if self.pos[id] == ABSENT {
            self.key[id] = key;
            self.pos[id] = self.heap.len();
            self.heap.push(id);
            self.sift_up(self.heap.len() - 1);
        } else {
            let old = self.key[id];
            self.key[id] = key;
            let at = self.pos[id];
            if key < old {
                self.sift_up(at);
            } else if key > old {
                self.sift_down(at);
            }
        }
    }

    /// Removes and returns the smallest `(key, id)` entry.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let &first = self.heap.first()?;
        self.remove_at(0);
        Some((self.key[first], first))
    }

    /// Removes and returns the smallest entry **iff** its key is `<= deadline`.
    /// This is the wake-drain primitive: the world pops every node due at the
    /// current tick and nothing beyond it.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, usize)> {
        match self.peek() {
            Some((key, _)) if key <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Removes the entry of `id`, if any. Returns `true` if one was removed.
    pub fn remove(&mut self, id: usize) -> bool {
        match self.pos.get(id) {
            Some(&p) if p != ABSENT => {
                self.remove_at(p);
                true
            }
            _ => false,
        }
    }

    fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
            self.key.resize(n, SimTime::ZERO);
        }
    }

    /// `true` if the entry of id `a` orders before the entry of id `b`.
    fn before(&self, a: usize, b: usize) -> bool {
        (self.key[a], a) < (self.key[b], b)
    }

    fn remove_at(&mut self, at: usize) {
        let id = self.heap[at];
        let last = self.heap.len() - 1;
        self.heap.swap(at, last);
        self.heap.pop();
        self.pos[id] = ABSENT;
        if at < self.heap.len() {
            // The entry swapped into `at` may order either way relative to
            // `at`'s old neighborhood; restore both directions.
            let moved = self.heap[at];
            self.pos[moved] = at;
            self.sift_down(at);
            self.sift_up(self.pos[moved]);
        }
    }

    fn sift_up(&mut self, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            if self.before(self.heap[at], self.heap[parent]) {
                self.heap.swap(at, parent);
                self.pos[self.heap[at]] = at;
                self.pos[self.heap[parent]] = parent;
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut at: usize) {
        loop {
            let left = 2 * at + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.heap.len() && self.before(self.heap[right], self.heap[left]) {
                smallest = right;
            }
            if self.before(self.heap[smallest], self.heap[at]) {
                self.heap.swap(at, smallest);
                self.pos[self.heap[at]] = at;
                self.pos[self.heap[smallest]] = smallest;
                at = smallest;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5);
        q.schedule(t(1), 1);
        q.schedule(t(3), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_between_equal_timestamps() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "a");
        q.schedule(t(2), "b");
        q.schedule(t(2), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1), "x");
        q.schedule(t(2), "y");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel must report false");
        assert_eq!(q.pop(), Some((t(2), "y")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
        q.schedule(t(1), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), 1);
        q.schedule(t(4), 4);
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        // schedule something between now and the pending "late" event
        q.schedule(t(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn handles_large_volumes() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // schedule in reverse order
            q.schedule(SimTime::from_millis(10_000 - i), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            count += 1;
        }
        assert_eq!(count, 10_000);
        let _ = SimDuration::ZERO; // silence unused import in some cfg combinations
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields non-decreasing timestamps, regardless of the
        /// insertion order and of which events get cancelled.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..100_000, 1..200),
                                 cancel_mask in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &ms) in times.iter().enumerate() {
                handles.push(q.schedule(SimTime::from_millis(ms), i));
            }
            let mut cancelled = std::collections::HashSet::new();
            for (i, h) in handles.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    q.cancel(*h);
                    cancelled.insert(i);
                }
            }
            let mut last = SimTime::ZERO;
            let mut seen = 0usize;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last);
                prop_assert!(!cancelled.contains(&idx), "cancelled event {idx} must not fire");
                last = t;
                seen += 1;
            }
            prop_assert_eq!(seen, times.len() - cancelled.len());
        }

        /// `len` always equals the number of events that will eventually pop.
        #[test]
        fn len_matches_poppable(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for &ms in &times {
                q.schedule(SimTime::from_millis(ms), ms);
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0;
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
            prop_assert!(q.is_empty());
        }
    }
}

#[cfg(test)]
mod batch_and_compact_tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn payloads<E: Copy>(batch: &[(EventHandle, E)]) -> Vec<E> {
        batch.iter().map(|(_, p)| *p).collect()
    }

    #[test]
    fn heap_batch_drains_one_timestamp_in_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "b1");
        q.schedule(t(1), "a1");
        q.schedule(t(2), "b2");
        q.schedule(t(1), "a2");
        let mut batch = Vec::new();
        assert_eq!(q.pop_due_batch(t(10), &mut batch), Some(t(1)));
        assert_eq!(payloads(&batch), vec!["a1", "a2"]);
        batch.clear();
        assert_eq!(q.pop_due_batch(t(10), &mut batch), Some(t(2)));
        assert_eq!(payloads(&batch), vec!["b1", "b2"]);
        batch.clear();
        assert_eq!(q.pop_due_batch(t(10), &mut batch), None);
        assert!(batch.is_empty());
    }

    #[test]
    fn heap_batch_respects_deadline_and_cancellation() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), "dead");
        q.schedule(t(1), "live");
        q.schedule(t(5), "later");
        q.cancel(h);
        let mut batch = Vec::new();
        assert_eq!(
            q.pop_due_batch(t(0), &mut batch),
            None,
            "deadline too early"
        );
        assert_eq!(q.pop_due_batch(t(1), &mut batch), Some(t(1)));
        assert_eq!(payloads(&batch), vec!["live"]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn compact_removes_buried_tombstones() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..100u64).map(|i| q.schedule(t(100 + i), i)).collect();
        for h in handles.iter().step_by(2) {
            q.cancel(*h);
        }
        // A cancel of an already-popped handle leaves a dead tombstone too.
        q.schedule(t(1), 999);
        let early = q.pop().unwrap();
        assert_eq!(early.1, 999);
        q.compact();
        assert_eq!(q.len(), 50);
        let survivors: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(
            survivors,
            (0..100).filter(|i| i % 2 == 1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn clear_restarts_the_handle_space() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1), 1);
        q.cancel(h1);
        q.clear();
        // Fresh queue: the first new handle occupies the same seq slot as h1
        // did, and there are no leftover tombstones to swallow it.
        let h2 = q.schedule(t(2), 2);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), 2)));
        // The heap cannot tell a fired handle from a pending one (cancel is
        // lazy); the tombstone it leaves is reclaimed by `compact`.
        q.cancel(h2);
        q.compact();
        assert!(q.is_empty());
    }
}

#[cfg(test)]
mod wheel_tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    fn drain<E>(wheel: &mut TimerWheel<E>) -> Vec<(SimTime, E)> {
        std::iter::from_fn(|| wheel.pop()).collect()
    }

    #[test]
    fn pops_in_time_order_with_fifo_ties() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(t(5), "late");
        wheel.schedule(t(2), "tie1");
        wheel.schedule(t(2), "tie2");
        wheel.schedule(t(1), "early");
        let order: Vec<_> = drain(&mut wheel).into_iter().map(|(_, p)| p).collect();
        assert_eq!(order, vec!["early", "tie1", "tie2", "late"]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn cancel_tombstones_and_handle_recycling() {
        let mut wheel = TimerWheel::new();
        let h1 = wheel.schedule(t(1), 1);
        let h2 = wheel.schedule(t(2), 2);
        assert!(wheel.cancel(h1));
        assert!(!wheel.cancel(h1), "double cancel must report false");
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.pop(), Some((t(2), 2)));
        assert!(!wheel.cancel(h2), "popped event cannot be cancelled");
        // h1's slab slot is recycled under a new generation: the stale handle
        // must not cancel the new tenant.
        let _h3 = wheel.schedule(t(3), 3);
        assert!(!wheel.cancel(h1));
        assert!(!wheel.cancel(h2));
        assert_eq!(wheel.len(), 1);
    }

    #[test]
    fn batch_drains_same_timestamp_events_together() {
        let mut wheel = TimerWheel::new();
        for i in 0..10u32 {
            wheel.schedule(SimTime::from_millis(7_777), i);
        }
        let cancelled = wheel.schedule(SimTime::from_millis(7_777), 99);
        wheel.schedule(SimTime::from_millis(7_778), 100);
        wheel.cancel(cancelled);
        let mut batch = Vec::new();
        assert_eq!(wheel.peek_time(), Some(SimTime::from_millis(7_777)));
        assert_eq!(
            wheel.pop_due_batch(SimTime::from_millis(7_777), &mut batch),
            Some(SimTime::from_millis(7_777))
        );
        let got: Vec<_> = batch.iter().map(|(_, p)| *p).collect();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
        batch.clear();
        assert_eq!(
            wheel.pop_due_batch(SimTime::from_millis(7_777), &mut batch),
            None,
            "next batch is beyond the deadline"
        );
        assert_eq!(
            wheel.pop_due_batch(SimTime::from_millis(9_999), &mut batch),
            Some(SimTime::from_millis(7_778))
        );
    }

    #[test]
    fn events_cross_every_level_and_the_far_list() {
        let mut wheel = TimerWheel::new();
        // Level 0 (ms), level 1 (hundreds of ms), level 2 (minutes), far (days).
        let times = [
            3u64,
            200,
            70_000,
            10_000_000,
            WHEEL_SPAN_MS + 5,
            3 * WHEEL_SPAN_MS + 1,
        ];
        for (i, &ms) in times.iter().enumerate() {
            wheel.schedule(SimTime::from_millis(ms), i);
        }
        let order: Vec<_> = drain(&mut wheel)
            .into_iter()
            .map(|(at, p)| (at.as_millis(), p))
            .collect();
        let expected: Vec<_> = times.iter().copied().zip(0..times.len()).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn interleaved_schedule_and_pop_across_cascades() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(SimTime::from_millis(100_000), "far-ish");
        assert_eq!(
            wheel.pop(),
            Some((SimTime::from_millis(100_000), "far-ish"))
        );
        // The floor advanced to 100 s; new events go near it.
        wheel.schedule(SimTime::from_millis(100_500), "next");
        wheel.schedule(SimTime::from_millis(100_001), "soon");
        assert_eq!(wheel.peek_time(), Some(SimTime::from_millis(100_001)));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(100_001), "soon")));
        assert_eq!(wheel.pop(), Some((SimTime::from_millis(100_500), "next")));
        assert_eq!(wheel.pop(), None);
    }

    #[test]
    fn scheduling_at_the_floor_joins_the_current_batch() {
        let mut wheel = TimerWheel::new();
        wheel.schedule(t(4), "a");
        assert_eq!(wheel.peek_time(), Some(t(4)));
        // The floor is 4 s now; a same-time schedule lands in the staged batch.
        wheel.schedule(t(4), "b");
        let mut batch = Vec::new();
        assert_eq!(wheel.pop_due_batch(t(4), &mut batch), Some(t(4)));
        let got: Vec<_> = batch.iter().map(|(_, p)| *p).collect();
        assert_eq!(got, vec!["a", "b"]);
    }

    #[test]
    fn cancelling_the_staged_batch_reveals_the_next_event() {
        let mut wheel = TimerWheel::new();
        let h = wheel.schedule(t(1), 1);
        wheel.schedule(t(9), 9);
        assert_eq!(wheel.peek_time(), Some(t(1)));
        wheel.cancel(h);
        assert_eq!(wheel.peek_time(), Some(t(9)));
        assert_eq!(wheel.pop(), Some((t(9), 9)));
    }

    #[test]
    fn far_only_wheel_jumps_instead_of_stepping() {
        let mut wheel = TimerWheel::new();
        let dead = wheel.schedule(SimTime::from_millis(10 * WHEEL_SPAN_MS), 0);
        wheel.schedule(SimTime::from_millis(10 * WHEEL_SPAN_MS + 7), 1);
        wheel.cancel(dead);
        assert_eq!(
            wheel.pop(),
            Some((SimTime::from_millis(10 * WHEEL_SPAN_MS + 7), 1))
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn clear_keeps_the_wheel_usable_and_invalidates_handles() {
        let mut wheel = TimerWheel::new();
        let h = wheel.schedule(t(1), 1);
        wheel.schedule(SimTime::from_millis(5 * WHEEL_SPAN_MS), 2);
        wheel.clear();
        assert!(wheel.is_empty());
        assert_eq!(wheel.pop(), None);
        // The floor is back at zero and old handles are dead.
        wheel.schedule(t(1), 10);
        assert!(!wheel.cancel(h));
        assert_eq!(wheel.pop(), Some((t(1), 10)));
    }

    #[test]
    fn handles_large_volumes_in_order() {
        let mut wheel = TimerWheel::new();
        for i in 0..10_000u64 {
            wheel.schedule(SimTime::from_millis(10_000 - i), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        let mut batch = Vec::new();
        while let Some(at) = wheel.pop_due_batch(SimTime::MAX, &mut batch) {
            assert!(at >= last);
            last = at;
            count += batch.len();
            batch.clear();
        }
        assert_eq!(count, 10_000);
    }

    #[test]
    fn capped_peek_does_not_raise_the_floor() {
        let ms = SimTime::from_millis;
        let mut wheel = TimerWheel::new();
        wheel.schedule(ms(10_000), "late");
        // Nothing due within the cap; crucially, the floor must stay at or
        // below the cap (an uncapped peek would cascade it to 10 000).
        assert_eq!(wheel.peek_time_capped(ms(2_000)), None);
        // A schedule between the cap and the late event must therefore fire
        // at its own time, not clamped to a prematurely raised floor.
        wheel.schedule(ms(3_000), "mid");
        assert_eq!(wheel.pop(), Some((ms(3_000), "mid")));
        assert_eq!(wheel.pop(), Some((ms(10_000), "late")));
    }

    #[test]
    fn capped_pop_drains_only_within_cap() {
        let ms = SimTime::from_millis;
        let mut wheel = TimerWheel::new();
        wheel.schedule(ms(100), 100);
        wheel.schedule(ms(150), 150);
        wheel.schedule(ms(800), 800);
        let mut batch = Vec::new();
        assert_eq!(
            wheel.pop_due_batch_capped(ms(500), &mut batch),
            Some(ms(100))
        );
        batch.clear();
        assert_eq!(
            wheel.pop_due_batch_capped(ms(500), &mut batch),
            Some(ms(150))
        );
        batch.clear();
        assert_eq!(wheel.pop_due_batch_capped(ms(500), &mut batch), None);
        assert!(batch.is_empty());
        // The floor stayed at or below 500: a late-arriving 400 ms event
        // still fires at 400 ms, before the 800 ms one.
        wheel.schedule(ms(400), 400);
        assert_eq!(wheel.pop(), Some((ms(400), 400)));
        assert_eq!(wheel.pop(), Some((ms(800), 800)));
    }

    #[test]
    fn capped_peek_crosses_rotations_only_within_cap() {
        let ms = SimTime::from_millis;
        // 10 ms and 300 ms sit in different 256 ms level-0 rotations.
        let mut wheel = TimerWheel::new();
        wheel.schedule(ms(10), 10);
        wheel.schedule(ms(300), 300);
        let mut batch = Vec::new();
        assert_eq!(
            wheel.pop_due_batch_capped(ms(280), &mut batch),
            Some(ms(10))
        );
        batch.clear();
        // The 256 boundary is within the cap, so it may be crossed, but the
        // 300 ms slot is beyond the cap and must not raise the floor.
        assert_eq!(wheel.pop_due_batch_capped(ms(280), &mut batch), None);
        wheel.schedule(ms(290), 290);
        assert_eq!(wheel.pop(), Some((ms(290), 290)));
        assert_eq!(wheel.pop(), Some((ms(300), 300)));
    }

    #[test]
    fn capped_peek_leaves_far_events_untouched() {
        let ms = SimTime::from_millis;
        let mut wheel = TimerWheel::new();
        wheel.schedule(ms(3 * WHEEL_SPAN_MS), 1);
        assert_eq!(wheel.peek_time_capped(ms(5_000)), None);
        wheel.schedule(ms(4_000), 2);
        assert_eq!(wheel.pop(), Some((ms(4_000), 2)));
        assert_eq!(wheel.pop(), Some((ms(3 * WHEEL_SPAN_MS), 1)));
    }
}

#[cfg(test)]
mod wheel_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    /// Model record of one scheduled event.
    #[derive(Debug, Clone, Copy)]
    struct Scheduled {
        handle: EventHandle,
        /// Key in the model map (effective time, global seq).
        key: (u64, u64),
    }

    proptest! {
        /// The wheel behaves exactly like a `BTreeMap<(time, seq), payload>`
        /// under arbitrary interleavings of schedule / cancel / batched pops,
        /// including times that overflow into (and cross back out of) the
        /// far list. The model mirrors the wheel's floor-clamping contract:
        /// scheduling below the floor fires at the floor.
        #[test]
        fn matches_btreemap_model(
            ops in proptest::collection::vec(
                (0u8..4, 0u64..(WHEEL_SPAN_MS * 2), 0usize..64),
                1..120,
            ),
        ) {
            let mut wheel: TimerWheel<u64> = TimerWheel::new();
            let mut model: BTreeMap<(u64, u64), u64> = BTreeMap::new();
            let mut issued: Vec<Scheduled> = Vec::new();
            let mut floor = 0u64;
            let mut next_seq = 0u64;
            let mut payload = 0u64;
            let mut batch = Vec::new();
            for (op, time_ms, pick) in ops {
                match op {
                    0 | 1 => {
                        let handle = wheel.schedule(SimTime::from_millis(time_ms), payload);
                        let key = (time_ms.max(floor), next_seq);
                        model.insert(key, payload);
                        issued.push(Scheduled { handle, key });
                        next_seq += 1;
                        payload += 1;
                    }
                    2 if !issued.is_empty() => {
                        let target = issued[pick % issued.len()];
                        let expected = model.remove(&target.key).is_some();
                        prop_assert_eq!(wheel.cancel(target.handle), expected);
                    }
                    _ => {
                        // Pop attempt with a drawn deadline. The attempt
                        // advances the floor to the earliest pending time
                        // whether or not the batch is released.
                        let deadline = SimTime::from_millis(time_ms);
                        batch.clear();
                        let got = wheel.pop_due_batch(deadline, &mut batch);
                        match model.first_key_value() {
                            None => {
                                prop_assert_eq!(got, None);
                                prop_assert!(batch.is_empty());
                            }
                            Some((&(at, _), _)) => {
                                floor = floor.max(at);
                                if at > time_ms {
                                    prop_assert_eq!(got, None);
                                    prop_assert!(batch.is_empty());
                                } else {
                                    prop_assert_eq!(got, Some(SimTime::from_millis(at)));
                                    let expected: Vec<u64> = model
                                        .range((at, 0)..(at, u64::MAX))
                                        .map(|(_, &p)| p)
                                        .collect();
                                    let drained: Vec<u64> =
                                        batch.iter().map(|&(_, p)| p).collect();
                                    prop_assert_eq!(drained, expected);
                                    while model
                                        .first_key_value()
                                        .is_some_and(|(&(t, _), _)| t == at)
                                    {
                                        model.pop_first();
                                    }
                                }
                            }
                        }
                    }
                }
                prop_assert_eq!(wheel.len(), model.len());
            }
            // Drain everything left; the tail must come out fully sorted.
            let mut drained = Vec::new();
            batch.clear();
            while let Some(at) = wheel.pop_due_batch(SimTime::MAX, &mut batch) {
                drained.extend(batch.drain(..).map(|(_, p)| (at.as_millis(), p)));
            }
            let expected: Vec<(u64, u64)> =
                model.iter().map(|(&(at, _), &p)| (at, p)).collect();
            prop_assert_eq!(drained, expected);
        }

        /// Single-event pops from the wheel match the reference heap pop for
        /// pop, including FIFO ties — the wheel and the heap implement the
        /// same contract.
        #[test]
        fn wheel_pop_matches_heap_pop(
            times in proptest::collection::vec(0u64..500_000, 1..150),
            cancel_mask in proptest::collection::vec(any::<bool>(), 1..150),
        ) {
            let mut wheel = TimerWheel::new();
            let mut heap = EventQueue::new();
            let mut wheel_handles = Vec::new();
            let mut heap_handles = Vec::new();
            for (i, &ms) in times.iter().enumerate() {
                wheel_handles.push(wheel.schedule(SimTime::from_millis(ms), i));
                heap_handles.push(heap.schedule(SimTime::from_millis(ms), i));
            }
            for (i, (&w, &h)) in wheel_handles.iter().zip(&heap_handles).enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    prop_assert_eq!(wheel.cancel(w), heap.cancel(h));
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            loop {
                let a = wheel.pop();
                let b = heap.pop();
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod indexed_tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_key_then_id_order() {
        let mut q = IndexedMinQueue::new();
        q.set(4, t(2));
        q.set(0, t(5));
        q.set(2, t(2));
        q.set(7, t(1));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(t(1), 7), (t(2), 2), (t(2), 4), (t(5), 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn set_rekeys_in_both_directions() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(10));
        q.set(1, t(20));
        q.set(2, t(30));
        assert_eq!(q.len(), 3);
        // Decrease 2 below everyone, increase 0 above everyone.
        q.set(2, t(1));
        q.set(0, t(99));
        assert_eq!(q.key_of(2), Some(t(1)));
        assert_eq!(q.key_of(0), Some(t(99)));
        assert_eq!(q.len(), 3, "re-keying must not duplicate entries");
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, id)| id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn pop_due_only_yields_entries_at_or_before_the_deadline() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(1));
        q.set(1, t(3));
        q.set(2, t(3));
        q.set(3, t(8));
        let mut due = Vec::new();
        while let Some((_, id)) = q.pop_due(t(3)) {
            due.push(id);
        }
        assert_eq!(due, vec![0, 1, 2]);
        assert_eq!(q.peek(), Some((t(8), 3)));
        assert_eq!(q.pop_due(t(7)), None);
    }

    #[test]
    fn remove_and_contains() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(1));
        q.set(1, t(2));
        q.set(2, t(3));
        assert!(q.contains(1));
        assert!(q.remove(1));
        assert!(!q.contains(1));
        assert!(!q.remove(1), "double remove must report false");
        assert!(!q.remove(99), "unknown id must report false");
        assert_eq!(q.key_of(1), None);
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, id)| id).collect();
        assert_eq!(order, vec![0, 2]);
    }

    #[test]
    fn equal_keys_pop_in_ascending_id_order() {
        let mut q = IndexedMinQueue::new();
        for id in (0..5).rev() {
            q.set(id, SimTime::ZERO);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_due(SimTime::ZERO))
            .map(|(_, id)| id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "equal keys pop in ascending id");
    }

    #[test]
    fn clear_keeps_the_queue_usable() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(1));
        q.set(1, t(2));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.set(1, t(7));
        assert_eq!(q.pop(), Some((t(7), 1)));
    }
}

#[cfg(test)]
mod indexed_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// The queue behaves exactly like a sorted map of `(key, id)` pairs
        /// under an arbitrary interleaving of set (insert, decrease, increase),
        /// remove and pop operations.
        #[test]
        fn matches_btreemap_model(
            ops in proptest::collection::vec((0usize..16, 0u64..1_000, 0u8..4), 1..200),
        ) {
            let mut q = IndexedMinQueue::new();
            let mut model: BTreeMap<usize, SimTime> = BTreeMap::new();
            for (id, ms, op) in ops {
                match op {
                    0 | 1 => {
                        let key = SimTime::from_millis(ms);
                        q.set(id, key);
                        model.insert(id, key);
                    }
                    2 => {
                        prop_assert_eq!(q.remove(id), model.remove(&id).is_some());
                    }
                    _ => {
                        let expected = model
                            .iter()
                            .map(|(&id, &key)| (key, id))
                            .min();
                        prop_assert_eq!(q.peek(), expected);
                        if let Some((key, id)) = q.pop() {
                            prop_assert_eq!(Some((key, id)), expected);
                            model.remove(&id);
                        } else {
                            prop_assert!(model.is_empty());
                        }
                    }
                }
                prop_assert_eq!(q.len(), model.len());
                for (&id, &key) in &model {
                    prop_assert_eq!(q.key_of(id), Some(key));
                }
            }
            // Drain: the remaining pops must come out fully sorted by (key, id).
            let mut drained = Vec::new();
            while let Some(entry) = q.pop() {
                drained.push(entry);
            }
            let mut expected: Vec<(SimTime, usize)> =
                model.iter().map(|(&id, &key)| (key, id)).collect();
            expected.sort_unstable();
            prop_assert_eq!(drained, expected);
        }
    }
}
