//! Discrete-event scheduler.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, payload)` pairs: events are
//! popped in non-decreasing time order, with FIFO ordering between events that
//! share the same timestamp (insertion order breaks ties). Scheduled events can
//! be cancelled through the [`EventHandle`] returned at insertion time, which is
//! how protocol timers (heartbeats, back-offs, garbage collection) are disarmed.
//!
//! [`IndexedMinQueue`] is the companion structure for *per-entity* deadlines:
//! each id in `0..n` holds at most one `SimTime` key, the key can be decreased
//! or increased in O(log n) by id, and the queue pops `(key, id)` pairs in
//! ascending order with the lowest id first among equal keys. The simulation
//! world uses it to schedule one wake event per node instead of scanning every
//! node on every mobility tick.
//!
//! # Examples
//!
//! ```
//! use simkit::scheduler::EventQueue;
//! use simkit::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2), "second");
//! let h = q.schedule(SimTime::from_secs(1), "first");
//! q.schedule(SimTime::from_secs(3), "third");
//! q.cancel(h);
//!
//! assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
//! assert_eq!(q.pop(), Some((SimTime::from_secs(3), "third")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

/// A single entry in the heap. Ordered so that the *earliest* time pops first,
/// and among equal times the *lowest sequence number* (earliest insertion).
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time / lowest seq is "greatest".
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cancellable discrete-event priority queue.
///
/// The queue is the heart of the simulation kernel: the simulation `World`
/// repeatedly pops the earliest pending event, advances the virtual clock to its
/// timestamp and dispatches it.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// Returns a handle that can later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now cancelled,
    /// `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(handle.0) {
            // We cannot cheaply know whether the seq is still in the heap; `live`
            // is corrected lazily in `pop`. Only count it if it plausibly is.
            if self.live > 0 {
                self.live -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live = self.live.saturating_sub(1);
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the earliest pending (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

/// An indexed min-priority queue of `SimTime` deadlines keyed by small integer
/// ids.
///
/// Every id in `0..id_bound` holds **at most one** entry. [`IndexedMinQueue::set`]
/// inserts a new entry or re-keys an existing one (decrease *and* increase are
/// both O(log n), located through a positions table — no lazy deletion, no
/// duplicate entries). Pops yield `(key, id)` in ascending key order; among
/// equal keys the **lowest id** pops first, which is what lets the simulation
/// world process waking nodes in exactly the order the reference full scan
/// visits them.
///
/// # Examples
///
/// ```
/// use simkit::scheduler::IndexedMinQueue;
/// use simkit::time::SimTime;
///
/// let mut q = IndexedMinQueue::new();
/// q.set(3, SimTime::from_secs(9));
/// q.set(1, SimTime::from_secs(5));
/// q.set(3, SimTime::from_secs(2)); // decrease-key by id
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), 3)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(5), 1)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IndexedMinQueue {
    /// Ids, heap-ordered by `(key[id], id)`.
    heap: Vec<usize>,
    /// `pos[id]` is the index of `id` in `heap`, or `ABSENT`.
    pos: Vec<usize>,
    /// `key[id]` is meaningful only while `pos[id] != ABSENT`.
    key: Vec<SimTime>,
}

const ABSENT: usize = usize::MAX;

impl IndexedMinQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        IndexedMinQueue::default()
    }

    /// Number of entries in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if the queue holds no entry.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every entry, keeping all allocations.
    pub fn clear(&mut self) {
        for &id in &self.heap {
            self.pos[id] = ABSENT;
        }
        self.heap.clear();
    }

    /// `true` if `id` currently holds an entry.
    pub fn contains(&self, id: usize) -> bool {
        self.pos.get(id).is_some_and(|&p| p != ABSENT)
    }

    /// The key of `id`, if it holds an entry.
    pub fn key_of(&self, id: usize) -> Option<SimTime> {
        self.contains(id).then(|| self.key[id])
    }

    /// The smallest `(key, id)` entry without removing it.
    pub fn peek(&self) -> Option<(SimTime, usize)> {
        self.heap.first().map(|&id| (self.key[id], id))
    }

    /// Inserts `id` with `key`, or re-keys it if already present (both
    /// decreases and increases restore the heap order).
    pub fn set(&mut self, id: usize, key: SimTime) {
        self.grow_to(id + 1);
        if self.pos[id] == ABSENT {
            self.key[id] = key;
            self.pos[id] = self.heap.len();
            self.heap.push(id);
            self.sift_up(self.heap.len() - 1);
        } else {
            let old = self.key[id];
            self.key[id] = key;
            let at = self.pos[id];
            if key < old {
                self.sift_up(at);
            } else if key > old {
                self.sift_down(at);
            }
        }
    }

    /// Removes and returns the smallest `(key, id)` entry.
    pub fn pop(&mut self) -> Option<(SimTime, usize)> {
        let &first = self.heap.first()?;
        self.remove_at(0);
        Some((self.key[first], first))
    }

    /// Removes and returns the smallest entry **iff** its key is `<= deadline`.
    /// This is the wake-drain primitive: the world pops every node due at the
    /// current tick and nothing beyond it.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, usize)> {
        match self.peek() {
            Some((key, _)) if key <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Removes the entry of `id`, if any. Returns `true` if one was removed.
    pub fn remove(&mut self, id: usize) -> bool {
        match self.pos.get(id) {
            Some(&p) if p != ABSENT => {
                self.remove_at(p);
                true
            }
            _ => false,
        }
    }

    fn grow_to(&mut self, n: usize) {
        if self.pos.len() < n {
            self.pos.resize(n, ABSENT);
            self.key.resize(n, SimTime::ZERO);
        }
    }

    /// `true` if the entry of id `a` orders before the entry of id `b`.
    fn before(&self, a: usize, b: usize) -> bool {
        (self.key[a], a) < (self.key[b], b)
    }

    fn remove_at(&mut self, at: usize) {
        let id = self.heap[at];
        let last = self.heap.len() - 1;
        self.heap.swap(at, last);
        self.heap.pop();
        self.pos[id] = ABSENT;
        if at < self.heap.len() {
            // The entry swapped into `at` may order either way relative to
            // `at`'s old neighborhood; restore both directions.
            let moved = self.heap[at];
            self.pos[moved] = at;
            self.sift_down(at);
            self.sift_up(self.pos[moved]);
        }
    }

    fn sift_up(&mut self, mut at: usize) {
        while at > 0 {
            let parent = (at - 1) / 2;
            if self.before(self.heap[at], self.heap[parent]) {
                self.heap.swap(at, parent);
                self.pos[self.heap[at]] = at;
                self.pos[self.heap[parent]] = parent;
                at = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut at: usize) {
        loop {
            let left = 2 * at + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut smallest = left;
            if right < self.heap.len() && self.before(self.heap[right], self.heap[left]) {
                smallest = right;
            }
            if self.before(self.heap[smallest], self.heap[at]) {
                self.heap.swap(at, smallest);
                self.pos[self.heap[at]] = at;
                self.pos[self.heap[smallest]] = smallest;
                at = smallest;
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5);
        q.schedule(t(1), 1);
        q.schedule(t(3), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_between_equal_timestamps() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "a");
        q.schedule(t(2), "b");
        q.schedule(t(2), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1), "x");
        q.schedule(t(2), "y");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel must report false");
        assert_eq!(q.pop(), Some((t(2), "y")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
        q.schedule(t(1), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), 1);
        q.schedule(t(4), 4);
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        // schedule something between now and the pending "late" event
        q.schedule(t(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn handles_large_volumes() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // schedule in reverse order
            q.schedule(SimTime::from_millis(10_000 - i), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            count += 1;
        }
        assert_eq!(count, 10_000);
        let _ = SimDuration::ZERO; // silence unused import in some cfg combinations
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields non-decreasing timestamps, regardless of the
        /// insertion order and of which events get cancelled.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..100_000, 1..200),
                                 cancel_mask in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &ms) in times.iter().enumerate() {
                handles.push(q.schedule(SimTime::from_millis(ms), i));
            }
            let mut cancelled = std::collections::HashSet::new();
            for (i, h) in handles.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    q.cancel(*h);
                    cancelled.insert(i);
                }
            }
            let mut last = SimTime::ZERO;
            let mut seen = 0usize;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last);
                prop_assert!(!cancelled.contains(&idx), "cancelled event {idx} must not fire");
                last = t;
                seen += 1;
            }
            prop_assert_eq!(seen, times.len() - cancelled.len());
        }

        /// `len` always equals the number of events that will eventually pop.
        #[test]
        fn len_matches_poppable(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for &ms in &times {
                q.schedule(SimTime::from_millis(ms), ms);
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0;
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
            prop_assert!(q.is_empty());
        }
    }
}

#[cfg(test)]
mod indexed_tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_key_then_id_order() {
        let mut q = IndexedMinQueue::new();
        q.set(4, t(2));
        q.set(0, t(5));
        q.set(2, t(2));
        q.set(7, t(1));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![(t(1), 7), (t(2), 2), (t(2), 4), (t(5), 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn set_rekeys_in_both_directions() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(10));
        q.set(1, t(20));
        q.set(2, t(30));
        assert_eq!(q.len(), 3);
        // Decrease 2 below everyone, increase 0 above everyone.
        q.set(2, t(1));
        q.set(0, t(99));
        assert_eq!(q.key_of(2), Some(t(1)));
        assert_eq!(q.key_of(0), Some(t(99)));
        assert_eq!(q.len(), 3, "re-keying must not duplicate entries");
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, id)| id).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn pop_due_only_yields_entries_at_or_before_the_deadline() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(1));
        q.set(1, t(3));
        q.set(2, t(3));
        q.set(3, t(8));
        let mut due = Vec::new();
        while let Some((_, id)) = q.pop_due(t(3)) {
            due.push(id);
        }
        assert_eq!(due, vec![0, 1, 2]);
        assert_eq!(q.peek(), Some((t(8), 3)));
        assert_eq!(q.pop_due(t(7)), None);
    }

    #[test]
    fn remove_and_contains() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(1));
        q.set(1, t(2));
        q.set(2, t(3));
        assert!(q.contains(1));
        assert!(q.remove(1));
        assert!(!q.contains(1));
        assert!(!q.remove(1), "double remove must report false");
        assert!(!q.remove(99), "unknown id must report false");
        assert_eq!(q.key_of(1), None);
        let order: Vec<usize> = std::iter::from_fn(|| q.pop()).map(|(_, id)| id).collect();
        assert_eq!(order, vec![0, 2]);
    }

    #[test]
    fn equal_keys_pop_in_ascending_id_order() {
        let mut q = IndexedMinQueue::new();
        for id in (0..5).rev() {
            q.set(id, SimTime::ZERO);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_due(SimTime::ZERO))
            .map(|(_, id)| id)
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "equal keys pop in ascending id");
    }

    #[test]
    fn clear_keeps_the_queue_usable() {
        let mut q = IndexedMinQueue::new();
        q.set(0, t(1));
        q.set(1, t(2));
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        q.set(1, t(7));
        assert_eq!(q.pop(), Some((t(7), 1)));
    }
}

#[cfg(test)]
mod indexed_proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    proptest! {
        /// The queue behaves exactly like a sorted map of `(key, id)` pairs
        /// under an arbitrary interleaving of set (insert, decrease, increase),
        /// remove and pop operations.
        #[test]
        fn matches_btreemap_model(
            ops in proptest::collection::vec((0usize..16, 0u64..1_000, 0u8..4), 1..200),
        ) {
            let mut q = IndexedMinQueue::new();
            let mut model: BTreeMap<usize, SimTime> = BTreeMap::new();
            for (id, ms, op) in ops {
                match op {
                    0 | 1 => {
                        let key = SimTime::from_millis(ms);
                        q.set(id, key);
                        model.insert(id, key);
                    }
                    2 => {
                        prop_assert_eq!(q.remove(id), model.remove(&id).is_some());
                    }
                    _ => {
                        let expected = model
                            .iter()
                            .map(|(&id, &key)| (key, id))
                            .min();
                        prop_assert_eq!(q.peek(), expected);
                        if let Some((key, id)) = q.pop() {
                            prop_assert_eq!(Some((key, id)), expected);
                            model.remove(&id);
                        } else {
                            prop_assert!(model.is_empty());
                        }
                    }
                }
                prop_assert_eq!(q.len(), model.len());
                for (&id, &key) in &model {
                    prop_assert_eq!(q.key_of(id), Some(key));
                }
            }
            // Drain: the remaining pops must come out fully sorted by (key, id).
            let mut drained = Vec::new();
            while let Some(entry) = q.pop() {
                drained.push(entry);
            }
            let mut expected: Vec<(SimTime, usize)> =
                model.iter().map(|(&id, &key)| (key, id)).collect();
            expected.sort_unstable();
            prop_assert_eq!(drained, expected);
        }
    }
}
