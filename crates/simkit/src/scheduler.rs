//! Discrete-event scheduler.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, payload)` pairs: events are
//! popped in non-decreasing time order, with FIFO ordering between events that
//! share the same timestamp (insertion order breaks ties). Scheduled events can
//! be cancelled through the [`EventHandle`] returned at insertion time, which is
//! how protocol timers (heartbeats, back-offs, garbage collection) are disarmed.
//!
//! # Examples
//!
//! ```
//! use simkit::scheduler::EventQueue;
//! use simkit::time::SimTime;
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2), "second");
//! let h = q.schedule(SimTime::from_secs(1), "first");
//! q.schedule(SimTime::from_secs(3), "third");
//! q.cancel(h);
//!
//! assert_eq!(q.pop(), Some((SimTime::from_secs(2), "second")));
//! assert_eq!(q.pop(), Some((SimTime::from_secs(3), "third")));
//! assert_eq!(q.pop(), None);
//! ```

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Opaque handle identifying a scheduled event, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventHandle(u64);

/// A single entry in the heap. Ordered so that the *earliest* time pops first,
/// and among equal times the *lowest sequence number* (earliest insertion).
#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so earliest time / lowest seq is "greatest".
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A cancellable discrete-event priority queue.
///
/// The queue is the heart of the simulation kernel: the simulation `World`
/// repeatedly pops the earliest pending event, advances the virtual clock to its
/// timestamp and dispatches it.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    live: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            live: 0,
        }
    }

    /// Schedules `payload` to fire at absolute time `time`.
    ///
    /// Returns a handle that can later be passed to [`EventQueue::cancel`].
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.live += 1;
        EventHandle(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending and is now cancelled,
    /// `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        if handle.0 >= self.next_seq {
            return false;
        }
        if self.cancelled.insert(handle.0) {
            // We cannot cheaply know whether the seq is still in the heap; `live`
            // is corrected lazily in `pop`. Only count it if it plausibly is.
            if self.live > 0 {
                self.live -= 1;
            }
            true
        } else {
            false
        }
    }

    /// Removes and returns the earliest pending event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.cancelled.remove(&entry.seq) {
                continue;
            }
            self.live = self.live.saturating_sub(1);
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// The timestamp of the earliest pending (non-cancelled) event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.cancelled.contains(&entry.seq) {
                let seq = entry.seq;
                self.heap.pop();
                self.cancelled.remove(&seq);
            } else {
                return Some(entry.time);
            }
        }
        None
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.cancelled.clear();
        self.live = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(5), 5);
        q.schedule(t(1), 1);
        q.schedule(t(3), 3);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn fifo_between_equal_timestamps() {
        let mut q = EventQueue::new();
        q.schedule(t(2), "a");
        q.schedule(t(2), "b");
        q.schedule(t(2), "c");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule(t(1), "x");
        q.schedule(t(2), "y");
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double cancel must report false");
        assert_eq!(q.pop(), Some((t(2), "y")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cancel_unknown_handle_is_noop() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(42)));
        q.schedule(t(1), 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h = q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(h);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.schedule(t(1), 1);
        q.schedule(t(4), 4);
        assert_eq!(q.peek_time(), Some(t(1)));
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(t(4)));
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.schedule(t(1), 1);
        q.schedule(t(2), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(10), "late");
        q.schedule(t(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        // schedule something between now and the pending "late" event
        q.schedule(t(5), "middle");
        assert_eq!(q.pop().unwrap().1, "middle");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn handles_large_volumes() {
        let mut q = EventQueue::new();
        for i in 0..10_000u64 {
            // schedule in reverse order
            q.schedule(SimTime::from_millis(10_000 - i), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((time, _)) = q.pop() {
            assert!(time >= last);
            last = time;
            count += 1;
        }
        assert_eq!(count, 10_000);
        let _ = SimDuration::ZERO; // silence unused import in some cfg combinations
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Popping always yields non-decreasing timestamps, regardless of the
        /// insertion order and of which events get cancelled.
        #[test]
        fn pop_order_is_monotone(times in proptest::collection::vec(0u64..100_000, 1..200),
                                 cancel_mask in proptest::collection::vec(any::<bool>(), 1..200)) {
            let mut q = EventQueue::new();
            let mut handles = Vec::new();
            for (i, &ms) in times.iter().enumerate() {
                handles.push(q.schedule(SimTime::from_millis(ms), i));
            }
            let mut cancelled = std::collections::HashSet::new();
            for (i, h) in handles.iter().enumerate() {
                if *cancel_mask.get(i).unwrap_or(&false) {
                    q.cancel(*h);
                    cancelled.insert(i);
                }
            }
            let mut last = SimTime::ZERO;
            let mut seen = 0usize;
            while let Some((t, idx)) = q.pop() {
                prop_assert!(t >= last);
                prop_assert!(!cancelled.contains(&idx), "cancelled event {idx} must not fire");
                last = t;
                seen += 1;
            }
            prop_assert_eq!(seen, times.len() - cancelled.len());
        }

        /// `len` always equals the number of events that will eventually pop.
        #[test]
        fn len_matches_poppable(times in proptest::collection::vec(0u64..1000, 0..100)) {
            let mut q = EventQueue::new();
            for &ms in &times {
                q.schedule(SimTime::from_millis(ms), ms);
            }
            prop_assert_eq!(q.len(), times.len());
            let mut popped = 0;
            while q.pop().is_some() {
                popped += 1;
            }
            prop_assert_eq!(popped, times.len());
            prop_assert!(q.is_empty());
        }
    }
}
