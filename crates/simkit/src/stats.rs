//! Streaming statistics used to aggregate multi-seed experiment results.
//!
//! The paper averages every data point over 30 simulation runs. [`OnlineStats`]
//! implements Welford's streaming algorithm (numerically stable mean/variance)
//! plus min/max tracking; [`Summary`] is its frozen snapshot with helpers for
//! 95 % confidence intervals. [`percentile`] provides the usual
//! nearest-rank-with-interpolation percentile on a sample.
//!
//! # Examples
//!
//! ```
//! use simkit::stats::OnlineStats;
//!
//! let mut s = OnlineStats::new();
//! for v in [0.9, 0.95, 1.0, 0.85] {
//!     s.push(v);
//! }
//! let summary = s.summary();
//! assert!((summary.mean - 0.925).abs() < 1e-12);
//! assert_eq!(summary.count, 4);
//! ```

use serde::{Deserialize, Serialize};

/// Streaming mean / variance / extrema accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

/// Frozen summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean (0 when the sample is empty).
    pub mean: f64,
    /// Sample standard deviation (0 when fewer than two observations).
    pub std_dev: f64,
    /// Smallest observation (0 when the sample is empty).
    pub min: f64,
    /// Largest observation (0 when the sample is empty).
    pub max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "statistics cannot accumulate NaN");
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.push(v);
        }
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0 for an empty sample).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel aggregation).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.count as f64 / total as f64;
        let m2 = self.m2
            + other.m2
            + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Freezes the accumulator into a [`Summary`].
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

impl Summary {
    /// Half-width of the ~95 % confidence interval on the mean, using the
    /// normal approximation (`1.96 * s / sqrt(n)`). Zero for samples of fewer
    /// than two observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev / (self.count as f64).sqrt()
        }
    }

    /// `(lower, upper)` bounds of the ~95 % confidence interval on the mean.
    pub fn ci95(&self) -> (f64, f64) {
        let hw = self.ci95_half_width();
        (self.mean - hw, self.mean + hw)
    }
}

/// Linear-interpolation percentile (`p` in `[0, 100]`) of a sample.
///
/// Returns `None` when the sample is empty.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or any value is NaN.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be in [0, 100], got {p}"
    );
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// Mean of a sample (0 for an empty slice). Convenience for ad-hoc aggregation.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        let s = OnlineStats::new().summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.ci95_half_width(), 0.0);
    }

    #[test]
    fn mean_and_stddev_match_reference() {
        let s: OnlineStats = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
            .into_iter()
            .collect();
        let sum = s.summary();
        assert!((sum.mean - 5.0).abs() < 1e-12);
        // sample std dev of that classic dataset is sqrt(32/7)
        assert!((sum.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(sum.min, 2.0);
        assert_eq!(sum.max, 9.0);
        assert_eq!(sum.count, 8);
    }

    #[test]
    fn single_observation() {
        let mut s = OnlineStats::new();
        s.push(3.5);
        let sum = s.summary();
        assert_eq!(sum.mean, 3.5);
        assert_eq!(sum.std_dev, 0.0);
        assert_eq!(sum.min, 3.5);
        assert_eq!(sum.max, 3.5);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64) * 0.37 - 5.0).collect();
        let mut whole = OnlineStats::new();
        whole.extend(data.iter().copied());

        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        a.extend(data[..40].iter().copied());
        b.extend(data[40..].iter().copied());
        a.merge(&b);

        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.std_dev() - whole.std_dev()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: OnlineStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut empty = OnlineStats::new();
        empty.merge(&a);
        assert_eq!(empty.summary(), before);
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        let small: OnlineStats = (0..10).map(|i| i as f64).collect();
        let large: OnlineStats = (0..1000).map(|i| (i % 10) as f64).collect();
        assert!(large.summary().ci95_half_width() < small.summary().ci95_half_width());
        let (lo, hi) = small.summary().ci95();
        assert!(lo < small.mean() && small.mean() < hi);
    }

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(5.0));
        assert_eq!(percentile(&v, 50.0), Some(3.0));
        assert_eq!(percentile(&v, 25.0), Some(2.0));
        assert_eq!(percentile(&[], 50.0), None);
        assert_eq!(percentile(&[7.0], 99.0), Some(7.0));
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0];
        assert_eq!(percentile(&v, 50.0), Some(15.0));
        assert_eq!(percentile(&v, 75.0), Some(17.5));
    }

    #[test]
    fn percentile_order_independent() {
        let sorted = [1.0, 2.0, 3.0, 4.0];
        let shuffled = [3.0, 1.0, 4.0, 2.0];
        assert_eq!(percentile(&sorted, 30.0), percentile(&shuffled, 30.0));
    }

    #[test]
    fn mean_helper() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    #[should_panic]
    fn nan_rejected() {
        let mut s = OnlineStats::new();
        s.push(f64::NAN);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Welford mean always equals the naive mean (within float tolerance).
        #[test]
        fn streaming_mean_matches_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..500)) {
            let s: OnlineStats = values.iter().copied().collect();
            let naive = values.iter().sum::<f64>() / values.len() as f64;
            prop_assert!((s.mean() - naive).abs() < 1e-6 * (1.0 + naive.abs()));
            prop_assert!(s.summary().min <= s.mean() + 1e-9);
            prop_assert!(s.summary().max >= s.mean() - 1e-9);
        }

        /// Merging two halves is equivalent to accumulating the whole sample.
        #[test]
        fn merge_is_associative_with_split(values in proptest::collection::vec(-1e3f64..1e3, 2..200),
                                           split in 0usize..200) {
            let split = split % values.len();
            let mut whole = OnlineStats::new();
            whole.extend(values.iter().copied());
            let mut left = OnlineStats::new();
            left.extend(values[..split].iter().copied());
            let mut right = OnlineStats::new();
            right.extend(values[split..].iter().copied());
            left.merge(&right);
            prop_assert_eq!(left.count(), whole.count());
            prop_assert!((left.mean() - whole.mean()).abs() < 1e-7);
            prop_assert!((left.variance() - whole.variance()).abs() < 1e-5 * (1.0 + whole.variance()));
        }

        /// Percentiles are monotone in `p` and bounded by the extrema.
        #[test]
        fn percentile_monotone(values in proptest::collection::vec(-1e4f64..1e4, 1..100),
                               p1 in 0f64..100.0, p2 in 0f64..100.0) {
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let a = percentile(&values, lo).unwrap();
            let b = percentile(&values, hi).unwrap();
            prop_assert!(a <= b + 1e-9);
            let min = values.iter().copied().fold(f64::INFINITY, f64::min);
            let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
        }
    }
}
