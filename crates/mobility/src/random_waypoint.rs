//! The random waypoint mobility model (Johnson & Maltz).
//!
//! A process repeatedly: picks a destination uniformly at random in the area,
//! picks a speed uniformly in `[speed_min, speed_max]`, travels to the
//! destination in a straight line at that speed, then pauses for a configurable
//! pause time before choosing the next waypoint. This is the model used for the
//! paper's large-area experiments (Figures 11, 12 and 17–20).
//!
//! Two configurations from the paper are provided as constructors:
//! [`RandomWaypointConfig::paper_fixed_speed`] (every node moves at the same
//! speed, Fig. 11) and [`RandomWaypointConfig::paper_heterogeneous`] (each node
//! draws its own speed from 1–40 m/s, Fig. 12).

use crate::model::MobilityModel;
use crate::point::{Area, Point};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimRng};

/// Configuration of a [`RandomWaypoint`] process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RandomWaypointConfig {
    /// The rectangular area the process roams in.
    pub area: Area,
    /// Minimum speed in m/s drawn for each leg.
    pub speed_min: f64,
    /// Maximum speed in m/s drawn for each leg.
    pub speed_max: f64,
    /// Pause time between two legs.
    pub pause: SimDuration,
}

impl RandomWaypointConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if speeds are negative, not finite, or `speed_min > speed_max`.
    pub fn new(area: Area, speed_min: f64, speed_max: f64, pause: SimDuration) -> Self {
        assert!(
            speed_min.is_finite() && speed_max.is_finite() && speed_min >= 0.0,
            "speeds must be finite and non-negative"
        );
        assert!(
            speed_min <= speed_max,
            "speed_min ({speed_min}) must not exceed speed_max ({speed_max})"
        );
        RandomWaypointConfig {
            area,
            speed_min,
            speed_max,
            pause,
        }
    }

    /// The paper's fixed-speed configuration (Fig. 11): a 25 km² area, 1 s pause
    /// time and every leg at exactly `speed` m/s.
    pub fn paper_fixed_speed(speed: f64) -> Self {
        RandomWaypointConfig::new(
            Area::paper_random_waypoint(),
            speed,
            speed,
            SimDuration::from_secs(1),
        )
    }

    /// The paper's heterogeneous configuration (Fig. 12): each leg's speed is
    /// drawn uniformly from 1–40 m/s.
    pub fn paper_heterogeneous() -> Self {
        RandomWaypointConfig::new(
            Area::paper_random_waypoint(),
            1.0,
            40.0,
            SimDuration::from_secs(1),
        )
    }
}

/// Internal movement state of a random-waypoint process.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    /// Travelling towards the waypoint at the given speed (m/s).
    Moving { waypoint: Point, speed: f64 },
    /// Pausing; `remaining` counts down to zero before the next leg.
    Pausing { remaining: SimDuration },
}

/// A single process following the random waypoint model.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    config: RandomWaypointConfig,
    position: Point,
    phase: Phase,
}

impl RandomWaypoint {
    /// Creates a process at a uniformly random initial position with a first
    /// waypoint already chosen.
    pub fn new(config: RandomWaypointConfig, rng: &mut SimRng) -> Self {
        let position = config.area.random_point(rng);
        Self::from_position(config, position, rng)
    }

    /// Creates a process at a specific initial position (useful for tests and
    /// trace-controlled scenarios).
    pub fn from_position(config: RandomWaypointConfig, position: Point, rng: &mut SimRng) -> Self {
        let mut this = RandomWaypoint {
            config,
            position,
            phase: Phase::Pausing {
                remaining: SimDuration::ZERO,
            },
        };
        this.pick_next_leg(rng);
        this
    }

    /// The configuration this process was created with.
    pub fn config(&self) -> &RandomWaypointConfig {
        &self.config
    }

    /// The waypoint currently being travelled to, if the process is moving.
    pub fn current_waypoint(&self) -> Option<Point> {
        match self.phase {
            Phase::Moving { waypoint, .. } => Some(waypoint),
            Phase::Pausing { .. } => None,
        }
    }

    /// Mirrors [`RandomWaypoint::new`] in place: redraw the initial position,
    /// then the first leg, consuming `rng` in exactly the constructor's order.
    fn redraw_initial_state(&mut self, rng: &mut SimRng) {
        self.position = self.config.area.random_point(rng);
        self.phase = Phase::Pausing {
            remaining: SimDuration::ZERO,
        };
        self.pick_next_leg(rng);
    }

    fn pick_next_leg(&mut self, rng: &mut SimRng) {
        let waypoint = self.config.area.random_point(rng);
        let speed = rng.uniform_f64(self.config.speed_min, self.config.speed_max);
        if speed <= 0.0 {
            // A zero speed would make the leg infinitely long; treat the node as
            // parked at its current position (paper's 0 m/s data points).
            self.phase = Phase::Pausing {
                remaining: SimDuration::MAX,
            };
        } else {
            self.phase = Phase::Moving { waypoint, speed };
        }
    }
}

impl MobilityModel for RandomWaypoint {
    fn position(&self) -> Point {
        self.position
    }

    fn speed(&self) -> f64 {
        match self.phase {
            Phase::Moving { speed, .. } => speed,
            Phase::Pausing { .. } => 0.0,
        }
    }

    fn time_to_transition(&self) -> SimDuration {
        match self.phase {
            Phase::Moving { waypoint, speed } => {
                if speed <= 0.0 {
                    return SimDuration::MAX;
                }
                SimDuration::from_secs_f64(self.position.distance(waypoint) / speed)
            }
            Phase::Pausing { remaining } => remaining,
        }
    }

    fn reset(&mut self, rng: &mut SimRng) -> bool {
        self.redraw_initial_state(rng);
        true
    }

    fn advance(&mut self, dt: SimDuration, rng: &mut SimRng) {
        let mut remaining_secs = dt.as_secs_f64();
        // A single `advance` may span a waypoint arrival and the following pause,
        // so loop until the time budget for this step is exhausted.
        while remaining_secs > 1e-9 {
            match self.phase {
                Phase::Moving { waypoint, speed } => {
                    let dist_to_wp = self.position.distance(waypoint);
                    let travel = speed * remaining_secs;
                    if travel < dist_to_wp {
                        self.position = self.position.step_towards(waypoint, travel);
                        remaining_secs = 0.0;
                    } else {
                        self.position = waypoint;
                        remaining_secs -= if speed > 0.0 { dist_to_wp / speed } else { 0.0 };
                        self.phase = Phase::Pausing {
                            remaining: self.config.pause,
                        };
                    }
                }
                Phase::Pausing { remaining } => {
                    if remaining == SimDuration::MAX {
                        // Permanently parked (zero-speed configuration).
                        return;
                    }
                    let pause_secs = remaining.as_secs_f64();
                    if pause_secs > remaining_secs {
                        self.phase = Phase::Pausing {
                            remaining: remaining - SimDuration::from_secs_f64(remaining_secs),
                        };
                        remaining_secs = 0.0;
                    } else {
                        remaining_secs -= pause_secs;
                        self.pick_next_leg(rng);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(speed_min: f64, speed_max: f64) -> RandomWaypointConfig {
        RandomWaypointConfig::new(
            Area::square(1000.0),
            speed_min,
            speed_max,
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn stays_inside_area() {
        let mut rng = SimRng::seed_from(42);
        let config = cfg(5.0, 20.0);
        let mut node = RandomWaypoint::new(config, &mut rng);
        for _ in 0..10_000 {
            node.advance(SimDuration::from_millis(500), &mut rng);
            assert!(
                config.area.contains(node.position()),
                "escaped to {}",
                node.position()
            );
        }
    }

    #[test]
    fn fixed_speed_config_moves_at_that_speed() {
        let mut rng = SimRng::seed_from(7);
        let config = RandomWaypointConfig::paper_fixed_speed(10.0);
        let node = RandomWaypoint::new(config, &mut rng);
        assert_eq!(node.speed(), 10.0);
    }

    #[test]
    fn zero_speed_never_moves() {
        let mut rng = SimRng::seed_from(3);
        let config = RandomWaypointConfig::paper_fixed_speed(0.0);
        let mut node = RandomWaypoint::new(config, &mut rng);
        let start = node.position();
        for _ in 0..100 {
            node.advance(SimDuration::from_secs(10), &mut rng);
        }
        assert_eq!(node.position(), start);
        assert_eq!(node.speed(), 0.0);
    }

    #[test]
    fn distance_travelled_bounded_by_speed() {
        let mut rng = SimRng::seed_from(9);
        let config = cfg(10.0, 10.0);
        let mut node = RandomWaypoint::new(config, &mut rng);
        for _ in 0..1000 {
            let before = node.position();
            node.advance(SimDuration::from_secs(1), &mut rng);
            let moved = before.distance(node.position());
            // At 10 m/s for 1 s a node covers at most 10 m (less when pausing or
            // when it reaches a waypoint mid-step and pauses).
            assert!(
                moved <= 10.0 + 1e-6,
                "moved {moved} m in one second at 10 m/s"
            );
        }
    }

    #[test]
    fn eventually_pauses_at_waypoints() {
        let mut rng = SimRng::seed_from(11);
        let config =
            RandomWaypointConfig::new(Area::square(50.0), 5.0, 5.0, SimDuration::from_secs(3));
        let mut node = RandomWaypoint::new(config, &mut rng);
        let mut seen_pause = false;
        for _ in 0..500 {
            node.advance(SimDuration::from_millis(200), &mut rng);
            if node.speed() == 0.0 {
                seen_pause = true;
            }
        }
        assert!(
            seen_pause,
            "a node in a 50 m box at 5 m/s must reach waypoints and pause"
        );
    }

    #[test]
    fn heterogeneous_speeds_vary_between_nodes() {
        let rng = SimRng::seed_from(13);
        let config = RandomWaypointConfig::paper_heterogeneous();
        let speeds: Vec<f64> = (0..20)
            .map(|i| {
                let mut node_rng = rng.derive(i);
                RandomWaypoint::new(config, &mut node_rng).speed()
            })
            .collect();
        let min = speeds.iter().copied().fold(f64::INFINITY, f64::min);
        let max = speeds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 5.0,
            "20 heterogeneous nodes should span a wide speed range"
        );
        assert!(speeds.iter().all(|s| (1.0..=40.0).contains(s)));
    }

    #[test]
    fn deterministic_given_seed() {
        let config = cfg(1.0, 30.0);
        let run = |seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            let mut node = RandomWaypoint::new(config, &mut rng);
            for _ in 0..200 {
                node.advance(SimDuration::from_millis(700), &mut rng);
            }
            node.position()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn from_position_starts_where_asked() {
        let mut rng = SimRng::seed_from(1);
        let start = Point::new(123.0, 456.0);
        let node = RandomWaypoint::from_position(cfg(1.0, 2.0), start, &mut rng);
        assert_eq!(node.position(), start);
        assert!(node.current_waypoint().is_some());
    }

    #[test]
    fn reset_is_bit_identical_to_a_fresh_construction() {
        let config = cfg(2.0, 25.0);
        // Dirty a node with a long walk, then reset it with a fresh stream.
        let mut walk_rng = SimRng::seed_from(3);
        let mut recycled = RandomWaypoint::new(config, &mut walk_rng);
        for _ in 0..300 {
            recycled.advance(SimDuration::from_millis(700), &mut walk_rng);
        }
        let mut recycled_rng = SimRng::seed_from(77);
        let mut fresh_rng = SimRng::seed_from(77);
        assert!(recycled.reset(&mut recycled_rng));
        let mut fresh = RandomWaypoint::new(config, &mut fresh_rng);
        // Same state, and — advancing both with their streams — same future.
        assert_eq!(recycled.position(), fresh.position());
        assert_eq!(recycled.speed(), fresh.speed());
        for _ in 0..200 {
            recycled.advance(SimDuration::from_millis(400), &mut recycled_rng);
            fresh.advance(SimDuration::from_millis(400), &mut fresh_rng);
            assert_eq!(recycled.position(), fresh.position());
            assert_eq!(recycled.speed(), fresh.speed());
        }
        assert_eq!(
            recycled_rng.uniform_u64(0, u64::MAX),
            fresh_rng.uniform_u64(0, u64::MAX),
            "reset must consume the RNG exactly like the constructor"
        );
    }

    #[test]
    #[should_panic]
    fn rejects_inverted_speed_range() {
        let _ = RandomWaypointConfig::new(Area::square(10.0), 5.0, 1.0, SimDuration::ZERO);
    }

    #[test]
    fn transition_time_tracks_the_phase() {
        let mut rng = SimRng::seed_from(21);
        let config = cfg(10.0, 10.0);
        let node = RandomWaypoint::from_position(config, Point::new(0.0, 0.0), &mut rng);
        // Moving: time to the waypoint at 10 m/s.
        let wp = node.current_waypoint().unwrap();
        let expected = SimDuration::from_secs_f64(node.position().distance(wp) / 10.0);
        assert_eq!(node.time_to_transition(), expected);
        // Parked forever at 0 m/s: never transitions.
        let mut rng = SimRng::seed_from(21);
        let parked = RandomWaypoint::new(RandomWaypointConfig::paper_fixed_speed(0.0), &mut rng);
        assert_eq!(parked.time_to_transition(), SimDuration::MAX);
    }

    #[test]
    fn paused_transition_time_counts_down_and_skipping_is_exact() {
        // Drive a node into a pause, then verify that (a) time_to_transition
        // reports the remaining pause and (b) catching up the skipped pause
        // time in one chunked advance is bit-identical (state and RNG stream)
        // to tick-by-tick advances.
        let mut rng = SimRng::seed_from(33);
        let config =
            RandomWaypointConfig::new(Area::square(50.0), 5.0, 5.0, SimDuration::from_secs(10));
        let mut node = RandomWaypoint::new(config, &mut rng);
        let tick = SimDuration::from_millis(500);
        while node.speed() > 0.0 {
            node.advance(tick, &mut rng);
        }
        let remaining = node.time_to_transition();
        assert!(remaining > SimDuration::ZERO && remaining <= SimDuration::from_secs(10));

        let mut ticked = node.clone();
        let mut ticked_rng = rng.clone();
        let mut chunked = node;
        let mut chunked_rng = rng;
        // Skip 6 ticks: the naive path advances each one; the dirty path
        // catches up with one 5-tick chunk followed by the final tick.
        for _ in 0..6 {
            ticked.advance(tick, &mut ticked_rng);
        }
        chunked.advance(tick * 5, &mut chunked_rng);
        chunked.advance(tick, &mut chunked_rng);
        assert_eq!(ticked.position(), chunked.position());
        assert_eq!(ticked.speed(), chunked.speed());
        assert_eq!(ticked.time_to_transition(), chunked.time_to_transition());
        assert_eq!(
            ticked_rng.uniform_u64(0, u64::MAX),
            chunked_rng.uniform_u64(0, u64::MAX)
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Regardless of seed, step size and speed range, a random-waypoint node
        /// never leaves its area and never moves faster than its configured
        /// maximum speed.
        #[test]
        fn containment_and_speed_limit(seed in any::<u64>(),
                                       speed_max in 0.5f64..50.0,
                                       step_ms in 1u64..5_000) {
            let config = RandomWaypointConfig::new(
                Area::square(800.0), 0.1, speed_max, SimDuration::from_secs(1));
            let mut rng = SimRng::seed_from(seed);
            let mut node = RandomWaypoint::new(config, &mut rng);
            let dt = SimDuration::from_millis(step_ms);
            for _ in 0..200 {
                let before = node.position();
                node.advance(dt, &mut rng);
                prop_assert!(config.area.contains(node.position()));
                let moved = before.distance(node.position());
                prop_assert!(moved <= speed_max * dt.as_secs_f64() + 1e-6);
            }
        }
    }
}
