//! The [`MobilityModel`] trait shared by every mobility model.
//!
//! A mobility model owns the position of a single mobile process and is driven
//! by the simulation loop: the world calls [`MobilityModel::advance`] with the
//! elapsed virtual time since the previous call, and reads back the new
//! position and current speed. Models are deterministic given their RNG stream,
//! which is what makes whole experiments reproducible from one seed.

use crate::point::Point;
use simkit::{SimDuration, SimRng};
use std::fmt::Debug;

/// A model of how one mobile process moves through the simulation area.
pub trait MobilityModel: Debug + Send {
    /// The current position of the process, in meters.
    fn position(&self) -> Point;

    /// The current speed of the process in meters per second (zero while pausing).
    ///
    /// This mirrors the optional "speed" field of the paper's heartbeat
    /// messages: the protocol can use it to adapt its heartbeat period.
    fn speed(&self) -> f64;

    /// Advances the model by `dt` of virtual time.
    ///
    /// Implementations must be deterministic functions of their internal state
    /// and of the values drawn from `rng`.
    fn advance(&mut self, dt: SimDuration, rng: &mut SimRng);

    /// How long until the model's movement state can next change: the time to
    /// the next waypoint arrival, pause end, or intersection arrival —
    /// whatever ends the current phase. [`SimDuration::MAX`] means the state
    /// never changes again (a stationary or permanently parked process).
    ///
    /// This is the hook behind the simulator's *dirty-tick* mobility advance:
    /// while [`MobilityModel::speed`] is zero, the position cannot change and
    /// no randomness is drawn until this much time has elapsed, so the
    /// simulation loop may skip [`MobilityModel::advance`] entirely for up to
    /// this long and later catch the model up in one chunked call — with
    /// bit-identical state and RNG stream. For moving phases the value is the
    /// straight-line travel-time estimate to the phase boundary; callers must
    /// still advance moving models every tick (their position changes).
    ///
    /// The conservative default of [`SimDuration::ZERO`] disables skipping, so
    /// models that do not implement the hook are simply advanced every tick.
    fn time_to_transition(&self) -> SimDuration {
        SimDuration::ZERO
    }

    /// Re-draws this model's just-constructed state from `rng`, **exactly** as
    /// its constructor would for the same configuration: same state, same RNG
    /// draws, same draw order. This is the hook behind *total* world-arena
    /// recycling — a reset model lets the simulator reuse the boxed allocation
    /// across the seeds of a sweep instead of rebuilding it, while keeping
    /// reports bit-identical to a freshly built world.
    ///
    /// Returns `true` if the reset happened in place. The conservative default
    /// returns `false` without touching `rng`, telling the embedder to drop
    /// the instance and rebuild it; custom models that do not implement the
    /// hook therefore stay correct, just un-recycled.
    fn reset(&mut self, rng: &mut SimRng) -> bool {
        let _ = rng;
        false
    }
}

/// A boxed mobility model, used when nodes in one simulation mix models.
pub type BoxedMobility = Box<dyn MobilityModel>;

/// A process that never moves. Used for the paper's 0 m/s data points and as a
/// degenerate baseline in tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    position: Point,
}

impl Stationary {
    /// Creates a stationary process at `position`.
    pub fn new(position: Point) -> Self {
        Stationary { position }
    }
}

impl MobilityModel for Stationary {
    fn position(&self) -> Point {
        self.position
    }

    fn speed(&self) -> f64 {
        0.0
    }

    fn advance(&mut self, _dt: SimDuration, _rng: &mut SimRng) {}

    fn time_to_transition(&self) -> SimDuration {
        SimDuration::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_never_moves() {
        let p = Point::new(10.0, 20.0);
        let mut m = Stationary::new(p);
        let mut rng = SimRng::seed_from(1);
        for _ in 0..100 {
            m.advance(SimDuration::from_secs(5), &mut rng);
        }
        assert_eq!(m.position(), p);
        assert_eq!(m.speed(), 0.0);
    }

    #[test]
    fn stationary_is_object_safe() {
        let boxed: BoxedMobility = Box::new(Stationary::new(Point::ORIGIN));
        assert_eq!(boxed.position(), Point::ORIGIN);
    }

    #[test]
    fn stationary_never_transitions() {
        let m = Stationary::new(Point::ORIGIN);
        assert_eq!(m.time_to_transition(), SimDuration::MAX);
    }

    #[test]
    fn default_transition_hook_is_conservative() {
        #[derive(Debug)]
        struct Custom;
        impl MobilityModel for Custom {
            fn position(&self) -> Point {
                Point::ORIGIN
            }
            fn speed(&self) -> f64 {
                0.0
            }
            fn advance(&mut self, _dt: SimDuration, _rng: &mut SimRng) {}
        }
        // Models without the hook must be advanced every tick.
        assert_eq!(Custom.time_to_transition(), SimDuration::ZERO);
    }

    #[test]
    fn default_reset_hook_declines_without_touching_the_rng() {
        // Stationary's position is drawn by the embedder, not the model, so it
        // keeps the conservative default: decline and get rebuilt.
        let mut m = Stationary::new(Point::new(1.0, 2.0));
        let mut rng = SimRng::seed_from(5);
        let mut untouched = rng.clone();
        assert!(!m.reset(&mut rng));
        assert_eq!(m.position(), Point::new(1.0, 2.0));
        assert_eq!(
            rng.uniform_u64(0, u64::MAX),
            untouched.uniform_u64(0, u64::MAX),
            "a declined reset must not consume randomness"
        );
    }
}
