//! Planar geometry primitives: points, displacement vectors and rectangular areas.
//!
//! All coordinates are in **meters**. The simulation areas of the paper are a
//! 5000 m × 5000 m square (25 km², random waypoint) and a 1200 m × 900 m campus
//! (city section).

use serde::{Deserialize, Serialize};
use simkit::SimRng;
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A position in the plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
}

/// A displacement between two points, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    /// East-west component in meters.
    pub dx: f64,
    /// North-south component in meters.
    pub dy: f64,
}

/// An axis-aligned rectangular simulation area `[0, width] × [0, height]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Area {
    width: f64,
    height: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in meters.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    ///
    /// ```
    /// # use mobility::point::Point;
    /// let a = Point::new(0.0, 0.0);
    /// let b = Point::new(3.0, 4.0);
    /// assert_eq!(a.distance(b), 5.0);
    /// ```
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance (cheaper when only comparisons are needed).
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The displacement vector from `self` to `other`.
    pub fn vector_to(self, other: Point) -> Vector {
        Vector {
            dx: other.x - self.x,
            dy: other.y - self.y,
        }
    }

    /// Moves from `self` towards `target` by at most `max_distance` meters.
    ///
    /// If `target` is closer than `max_distance`, the result is exactly `target`.
    pub fn step_towards(self, target: Point, max_distance: f64) -> Point {
        let d = self.distance(target);
        if d <= max_distance || d == 0.0 {
            return target;
        }
        let ratio = max_distance / d;
        Point {
            x: self.x + (target.x - self.x) * ratio,
            y: self.y + (target.y - self.y) * ratio,
        }
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }
}

impl Vector {
    /// The length of the vector in meters.
    pub fn length(self) -> f64 {
        (self.dx * self.dx + self.dy * self.dy).sqrt()
    }

    /// A unit-length vector pointing in the same direction, or the zero vector
    /// if this vector has zero length.
    pub fn normalized(self) -> Vector {
        let len = self.length();
        if len == 0.0 {
            Vector::default()
        } else {
            Vector {
                dx: self.dx / len,
                dy: self.dy / len,
            }
        }
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    fn add(self, v: Vector) -> Point {
        Point {
            x: self.x + v.dx,
            y: self.y + v.dy,
        }
    }
}

impl Sub for Point {
    type Output = Vector;
    fn sub(self, other: Point) -> Vector {
        other.vector_to(self)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    fn mul(self, k: f64) -> Vector {
        Vector {
            dx: self.dx * k,
            dy: self.dy * k,
        }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}m, {:.1}m)", self.x, self.y)
    }
}

impl Area {
    /// Creates an area of `width × height` meters.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive or not finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && height.is_finite() && width > 0.0 && height > 0.0,
            "area dimensions must be positive and finite, got {width} x {height}"
        );
        Area { width, height }
    }

    /// A square area with the given side length in meters.
    pub fn square(side: f64) -> Self {
        Area::new(side, side)
    }

    /// The 5 km × 5 km (25 km²) square used by the paper's random-waypoint
    /// experiments.
    pub fn paper_random_waypoint() -> Self {
        Area::square(5_000.0)
    }

    /// The 1200 m × 900 m EPFL-campus-sized rectangle used by the paper's
    /// city-section experiments.
    pub fn paper_city_section() -> Self {
        Area::new(1_200.0, 900.0)
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Surface in square meters.
    pub fn surface_m2(&self) -> f64 {
        self.width * self.height
    }

    /// `true` if the point lies inside the area (inclusive of the boundary).
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Clamps a point to the area boundary.
    pub fn clamp(&self, p: Point) -> Point {
        Point {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }

    /// A uniformly distributed random point inside the area.
    pub fn random_point(&self, rng: &mut SimRng) -> Point {
        Point {
            x: rng.uniform_f64(0.0, self.width),
            y: rng.uniform_f64(0.0, self.height),
        }
    }

    /// The geometric center of the area.
    pub fn center(&self) -> Point {
        Point::new(self.width / 2.0, self.height / 2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_squared_agree() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_squared(b), 25.0);
        assert_eq!(a.distance(a), 0.0);
        assert_eq!(b.distance(a), a.distance(b));
    }

    #[test]
    fn step_towards_reaches_and_clamps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        assert_eq!(a.step_towards(b, 4.0), Point::new(4.0, 0.0));
        assert_eq!(a.step_towards(b, 15.0), b);
        assert_eq!(a.step_towards(a, 3.0), a);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn vector_arithmetic() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        let v = a.vector_to(b);
        assert_eq!(v.length(), 5.0);
        assert_eq!(a + v, b);
        assert_eq!(b - a, v);
        let u = v.normalized();
        assert!((u.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vector::default().normalized(), Vector::default());
        assert_eq!((v * 2.0).length(), 10.0);
    }

    #[test]
    fn area_contains_and_clamp() {
        let area = Area::new(100.0, 50.0);
        assert!(area.contains(Point::new(0.0, 0.0)));
        assert!(area.contains(Point::new(100.0, 50.0)));
        assert!(!area.contains(Point::new(100.1, 10.0)));
        assert!(!area.contains(Point::new(-0.1, 10.0)));
        assert_eq!(area.clamp(Point::new(150.0, -3.0)), Point::new(100.0, 0.0));
        assert_eq!(area.center(), Point::new(50.0, 25.0));
    }

    #[test]
    fn paper_areas_have_expected_sizes() {
        assert_eq!(Area::paper_random_waypoint().surface_m2(), 25_000_000.0);
        let campus = Area::paper_city_section();
        assert_eq!(campus.width(), 1200.0);
        assert_eq!(campus.height(), 900.0);
    }

    #[test]
    fn random_points_stay_inside() {
        let area = Area::new(300.0, 200.0);
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            assert!(area.contains(area.random_point(&mut rng)));
        }
    }

    #[test]
    #[should_panic]
    fn area_rejects_zero_dimension() {
        let _ = Area::new(0.0, 10.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The triangle inequality holds for the distance metric.
        #[test]
        fn triangle_inequality(ax in -1e4f64..1e4, ay in -1e4f64..1e4,
                               bx in -1e4f64..1e4, by in -1e4f64..1e4,
                               cx in -1e4f64..1e4, cy in -1e4f64..1e4) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let c = Point::new(cx, cy);
            prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-6);
        }

        /// Stepping towards a target never overshoots and never increases distance.
        #[test]
        fn step_towards_never_overshoots(ax in 0f64..1000.0, ay in 0f64..1000.0,
                                         bx in 0f64..1000.0, by in 0f64..1000.0,
                                         step in 0f64..2000.0) {
            let a = Point::new(ax, ay);
            let b = Point::new(bx, by);
            let stepped = a.step_towards(b, step);
            prop_assert!(stepped.distance(b) <= a.distance(b) + 1e-9);
            prop_assert!(a.distance(stepped) <= step + 1e-9 || stepped == b);
        }

        /// Clamping always produces a point inside the area and is idempotent.
        #[test]
        fn clamp_is_idempotent(w in 1f64..5000.0, h in 1f64..5000.0,
                               x in -1e4f64..1e4, y in -1e4f64..1e4) {
            let area = Area::new(w, h);
            let clamped = area.clamp(Point::new(x, y));
            prop_assert!(area.contains(clamped));
            prop_assert_eq!(area.clamp(clamped), clamped);
        }
    }
}
