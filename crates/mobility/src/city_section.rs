//! The city section mobility model (Davies).
//!
//! Processes move on a street network: each road has a speed limit and a
//! *popularity* weight (the paper stresses that "some roads are more often used
//! than others" and that reliability in this model is driven by the "social
//! meeting points" where popular roads cross). A process repeatedly chooses a
//! destination intersection — weighted by popularity — computes the fastest
//! route there (Dijkstra over travel time), drives each road segment at its
//! speed limit, and may pause at intersections (red lights, parking).
//!
//! The paper uses a map of the EPFL campus (1200 m × 900 m); since that map is
//! not published, [`StreetMap::campus`] builds a synthetic street grid of the
//! same dimensions with a popular central avenue, which preserves the
//! heterogeneous road-usage behaviour the paper's analysis relies on.

use crate::model::MobilityModel;
use crate::point::{Area, Point};
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimRng};
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A road connecting two intersections of a [`StreetMap`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Index of the first endpoint intersection.
    pub a: usize,
    /// Index of the second endpoint intersection.
    pub b: usize,
    /// Speed limit on this road, in m/s.
    pub speed_limit: f64,
    /// Relative popularity of the road; destinations adjacent to popular roads
    /// are chosen more often, concentrating traffic ("social meeting points").
    pub popularity: f64,
}

/// An immutable street network: intersections (points) connected by roads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreetMap {
    intersections: Vec<Point>,
    roads: Vec<Road>,
    /// adjacency[i] lists (neighbor intersection, road index) pairs.
    adjacency: Vec<Vec<(usize, usize)>>,
    area: Area,
}

/// Errors raised while building a [`StreetMap`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreetMapError {
    /// The map has no intersections.
    Empty,
    /// A road references an intersection index that does not exist.
    DanglingRoad {
        /// Index of the offending road in insertion order.
        road: usize,
    },
    /// A road connects an intersection to itself.
    SelfLoop {
        /// Index of the offending road in insertion order.
        road: usize,
    },
    /// A road has a non-positive speed limit.
    InvalidSpeedLimit {
        /// Index of the offending road in insertion order.
        road: usize,
    },
    /// Some intersection cannot be reached from intersection 0.
    Disconnected {
        /// Index of an unreachable intersection.
        intersection: usize,
    },
}

impl std::fmt::Display for StreetMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreetMapError::Empty => write!(f, "street map has no intersections"),
            StreetMapError::DanglingRoad { road } => {
                write!(f, "road {road} references a missing intersection")
            }
            StreetMapError::SelfLoop { road } => write!(f, "road {road} is a self loop"),
            StreetMapError::InvalidSpeedLimit { road } => {
                write!(f, "road {road} has a non-positive speed limit")
            }
            StreetMapError::Disconnected { intersection } => {
                write!(f, "intersection {intersection} is unreachable")
            }
        }
    }
}

impl std::error::Error for StreetMapError {}

/// Incremental builder for [`StreetMap`].
#[derive(Debug, Clone, Default)]
pub struct StreetMapBuilder {
    intersections: Vec<Point>,
    roads: Vec<Road>,
}

impl StreetMapBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an intersection and returns its index.
    pub fn intersection(&mut self, p: Point) -> usize {
        self.intersections.push(p);
        self.intersections.len() - 1
    }

    /// Adds a bidirectional road between intersections `a` and `b`.
    pub fn road(&mut self, a: usize, b: usize, speed_limit: f64, popularity: f64) -> &mut Self {
        self.roads.push(Road {
            a,
            b,
            speed_limit,
            popularity,
        });
        self
    }

    /// Validates the network and builds the immutable map.
    ///
    /// # Errors
    ///
    /// Returns a [`StreetMapError`] if the map is empty, a road is malformed, or
    /// the network is not connected.
    pub fn build(self) -> Result<StreetMap, StreetMapError> {
        if self.intersections.is_empty() {
            return Err(StreetMapError::Empty);
        }
        let n = self.intersections.len();
        let mut adjacency = vec![Vec::new(); n];
        for (idx, road) in self.roads.iter().enumerate() {
            if road.a >= n || road.b >= n {
                return Err(StreetMapError::DanglingRoad { road: idx });
            }
            if road.a == road.b {
                return Err(StreetMapError::SelfLoop { road: idx });
            }
            if road.speed_limit <= 0.0 || !road.speed_limit.is_finite() {
                return Err(StreetMapError::InvalidSpeedLimit { road: idx });
            }
            adjacency[road.a].push((road.b, idx));
            adjacency[road.b].push((road.a, idx));
        }
        // Connectivity check (BFS from intersection 0).
        let mut visited = vec![false; n];
        let mut queue = std::collections::VecDeque::from([0usize]);
        visited[0] = true;
        while let Some(i) = queue.pop_front() {
            for &(j, _) in &adjacency[i] {
                if !visited[j] {
                    visited[j] = true;
                    queue.push_back(j);
                }
            }
        }
        if let Some(unreachable) = visited.iter().position(|v| !v) {
            return Err(StreetMapError::Disconnected {
                intersection: unreachable,
            });
        }
        let max_x = self
            .intersections
            .iter()
            .map(|p| p.x)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1.0);
        let max_y = self
            .intersections
            .iter()
            .map(|p| p.y)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(1.0);
        Ok(StreetMap {
            intersections: self.intersections,
            roads: self.roads,
            adjacency,
            area: Area::new(max_x, max_y),
        })
    }
}

impl StreetMap {
    /// A synthetic campus-sized street grid (1200 m × 900 m), the stand-in for
    /// the paper's EPFL map.
    ///
    /// Layout: a 5 × 4 grid of intersections every 300 m. Horizontal roads carry
    /// a speed limit of 8–13 m/s depending on the row; the central east-west
    /// avenue (row 1) and the central north-south street (column 2) are marked
    /// as highly popular so traffic concentrates there, reproducing the paper's
    /// "certain roads have more importance than others".
    pub fn campus() -> Arc<StreetMap> {
        let mut b = StreetMapBuilder::new();
        let cols = 5usize; // x: 0, 300, 600, 900, 1200
        let rows = 4usize; // y: 0, 300, 600, 900
        for row in 0..rows {
            for col in 0..cols {
                b.intersection(Point::new(col as f64 * 300.0, row as f64 * 300.0));
            }
        }
        let idx = |row: usize, col: usize| row * cols + col;
        // Horizontal roads.
        for row in 0..rows {
            // Speed limit varies by row: 8, 13, 10, 9 m/s.
            let speed = [8.0, 13.0, 10.0, 9.0][row % 4];
            let popularity = if row == 1 { 5.0 } else { 1.0 };
            for col in 0..cols - 1 {
                b.road(idx(row, col), idx(row, col + 1), speed, popularity);
            }
        }
        // Vertical roads.
        for col in 0..cols {
            let speed = [9.0, 10.0, 12.0, 10.0, 8.0][col % 5];
            let popularity = if col == 2 { 4.0 } else { 1.0 };
            for row in 0..rows - 1 {
                b.road(idx(row, col), idx(row + 1, col), speed, popularity);
            }
        }
        Arc::new(b.build().expect("campus map is statically valid"))
    }

    /// Number of intersections.
    pub fn intersection_count(&self) -> usize {
        self.intersections.len()
    }

    /// The position of intersection `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn intersection(&self, i: usize) -> Point {
        self.intersections[i]
    }

    /// The roads of the map, in insertion order.
    pub fn roads(&self) -> &[Road] {
        &self.roads
    }

    /// The bounding area of the map.
    pub fn area(&self) -> Area {
        self.area
    }

    /// Popularity weight of an intersection: the sum of the popularity of its
    /// adjacent roads. Used to bias destination choice towards busy spots.
    pub fn intersection_popularity(&self, i: usize) -> f64 {
        self.adjacency[i]
            .iter()
            .map(|&(_, road)| self.roads[road].popularity)
            .sum()
    }

    /// The road joining intersections `a` and `b`, if one exists.
    pub fn road_between(&self, a: usize, b: usize) -> Option<&Road> {
        self.adjacency[a]
            .iter()
            .find(|&&(n, _)| n == b)
            .map(|&(_, road)| &self.roads[road])
    }

    /// Fastest route (by travel time at each road's speed limit) from `from` to
    /// `to`, as a list of intersection indices including both endpoints.
    /// Returns `None` only if the intersections are not connected, which a
    /// successfully built map rules out.
    ///
    /// # Panics
    ///
    /// Panics if `from` or `to` is out of bounds.
    pub fn fastest_route(&self, from: usize, to: usize) -> Option<Vec<usize>> {
        assert!(from < self.intersections.len() && to < self.intersections.len());
        if from == to {
            return Some(vec![from]);
        }
        #[derive(PartialEq)]
        struct State {
            cost: f64,
            node: usize,
        }
        impl Eq for State {}
        impl Ord for State {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Min-heap on cost.
                other
                    .cost
                    .partial_cmp(&self.cost)
                    .unwrap_or(std::cmp::Ordering::Equal)
            }
        }
        impl PartialOrd for State {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let n = self.intersections.len();
        let mut dist = vec![f64::INFINITY; n];
        let mut prev = vec![usize::MAX; n];
        let mut heap = BinaryHeap::new();
        dist[from] = 0.0;
        heap.push(State {
            cost: 0.0,
            node: from,
        });
        while let Some(State { cost, node }) = heap.pop() {
            if node == to {
                break;
            }
            if cost > dist[node] {
                continue;
            }
            for &(next, road_idx) in &self.adjacency[node] {
                let road = &self.roads[road_idx];
                let length = self.intersections[node].distance(self.intersections[next]);
                let travel = length / road.speed_limit;
                let next_cost = cost + travel;
                if next_cost < dist[next] {
                    dist[next] = next_cost;
                    prev[next] = node;
                    heap.push(State {
                        cost: next_cost,
                        node: next,
                    });
                }
            }
        }
        if dist[to].is_infinite() {
            return None;
        }
        let mut path = vec![to];
        let mut cur = to;
        while cur != from {
            cur = prev[cur];
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

/// Configuration of a [`CitySection`] process.
#[derive(Debug, Clone)]
pub struct CitySectionConfig {
    /// The shared street network.
    pub map: Arc<StreetMap>,
    /// Probability of stopping when arriving at an intersection (red light,
    /// parking manoeuvre, ...).
    pub pause_probability: f64,
    /// Shortest pause when a stop happens.
    pub pause_min: SimDuration,
    /// Longest pause when a stop happens.
    pub pause_max: SimDuration,
}

impl CitySectionConfig {
    /// The configuration used for the paper's city-section experiments: the
    /// campus map, a 30 % chance of stopping at an intersection, and stops of
    /// 2–15 s (red lights to short parking).
    pub fn paper_campus() -> Self {
        CitySectionConfig {
            map: StreetMap::campus(),
            pause_probability: 0.3,
            pause_min: SimDuration::from_secs(2),
            pause_max: SimDuration::from_secs(15),
        }
    }
}

/// Movement state of a city-section process.
#[derive(Debug, Clone, PartialEq)]
enum Drive {
    /// Driving towards `route[next]`; `speed` is the current road's limit.
    Moving {
        route: Vec<usize>,
        next: usize,
        speed: f64,
    },
    /// Stopped at an intersection for `remaining` time; will then continue with
    /// the stored route.
    Paused {
        route: Vec<usize>,
        next: usize,
        remaining: SimDuration,
    },
}

/// A single process following the city section model.
#[derive(Debug, Clone)]
pub struct CitySection {
    config: CitySectionConfig,
    position: Point,
    at_intersection: usize,
    drive: Drive,
}

impl CitySection {
    /// Creates a process starting at a popularity-weighted random intersection.
    pub fn new(config: CitySectionConfig, rng: &mut SimRng) -> Self {
        let weights: Vec<f64> = (0..config.map.intersection_count())
            .map(|i| config.map.intersection_popularity(i))
            .collect();
        let start = rng.pick_weighted(&weights).unwrap_or(0);
        Self::from_intersection(config, start, rng)
    }

    /// Creates a process starting at the given intersection.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a valid intersection index.
    pub fn from_intersection(config: CitySectionConfig, start: usize, rng: &mut SimRng) -> Self {
        assert!(
            start < config.map.intersection_count(),
            "invalid start intersection"
        );
        let position = config.map.intersection(start);
        let mut this = CitySection {
            config,
            position,
            at_intersection: start,
            drive: Drive::Paused {
                route: vec![start],
                next: 0,
                remaining: SimDuration::ZERO,
            },
        };
        this.plan_new_trip(rng);
        this
    }

    /// The index of the intersection the process most recently visited.
    pub fn last_intersection(&self) -> usize {
        self.at_intersection
    }

    /// Mirrors [`CitySection::new`] in place: redraw the start intersection
    /// (popularity-weighted) and the first trip, consuming `rng` in exactly
    /// the constructor's order.
    fn redraw_initial_state(&mut self, rng: &mut SimRng) {
        let weights: Vec<f64> = (0..self.config.map.intersection_count())
            .map(|i| self.config.map.intersection_popularity(i))
            .collect();
        let start = rng.pick_weighted(&weights).unwrap_or(0);
        self.at_intersection = start;
        self.position = self.config.map.intersection(start);
        self.drive = Drive::Paused {
            route: vec![start],
            next: 0,
            remaining: SimDuration::ZERO,
        };
        self.plan_new_trip(rng);
    }

    fn plan_new_trip(&mut self, rng: &mut SimRng) {
        let map = &self.config.map;
        // Choose a destination different from the current intersection, weighted
        // by intersection popularity.
        let weights: Vec<f64> = (0..map.intersection_count())
            .map(|i| {
                if i == self.at_intersection {
                    0.0
                } else {
                    map.intersection_popularity(i)
                }
            })
            .collect();
        let destination = match rng.pick_weighted(&weights) {
            Some(d) => d,
            None => {
                // Single-intersection map: nothing to do, stay parked.
                self.drive = Drive::Paused {
                    route: vec![self.at_intersection],
                    next: 0,
                    remaining: SimDuration::MAX,
                };
                return;
            }
        };
        let route = map
            .fastest_route(self.at_intersection, destination)
            .expect("street maps are connected by construction");
        let speed = self.segment_speed(&route, 1);
        self.drive = Drive::Moving {
            route,
            next: 1,
            speed,
        };
    }

    /// Speed limit of the road leading to `route[next]`, or 0 if the route has
    /// no further segment.
    fn segment_speed(&self, route: &[usize], next: usize) -> f64 {
        if next == 0 || next >= route.len() {
            return 0.0;
        }
        self.config
            .map
            .road_between(route[next - 1], route[next])
            .map(|r| r.speed_limit)
            .unwrap_or(0.0)
    }

    fn arrive_at(&mut self, intersection: usize, route: Vec<usize>, next: usize, rng: &mut SimRng) {
        self.at_intersection = intersection;
        self.position = self.config.map.intersection(intersection);
        let should_pause = rng.chance(self.config.pause_probability);
        if next >= route.len() {
            // Destination reached: maybe pause, then plan the next trip.
            if should_pause {
                self.drive = Drive::Paused {
                    route: vec![intersection],
                    next: 0,
                    remaining: rng.uniform_duration(self.config.pause_min, self.config.pause_max),
                };
            } else {
                self.plan_new_trip(rng);
            }
            return;
        }
        if should_pause {
            self.drive = Drive::Paused {
                route,
                next,
                remaining: rng.uniform_duration(self.config.pause_min, self.config.pause_max),
            };
        } else {
            let speed = self.segment_speed(&route, next);
            self.drive = Drive::Moving { route, next, speed };
        }
    }
}

impl MobilityModel for CitySection {
    fn position(&self) -> Point {
        self.position
    }

    fn speed(&self) -> f64 {
        match &self.drive {
            Drive::Moving { speed, .. } => *speed,
            Drive::Paused { .. } => 0.0,
        }
    }

    fn time_to_transition(&self) -> SimDuration {
        match &self.drive {
            Drive::Moving { route, next, speed } => {
                if *speed <= 0.0 {
                    return SimDuration::MAX;
                }
                let target = self.config.map.intersection(route[*next]);
                SimDuration::from_secs_f64(self.position.distance(target) / *speed)
            }
            Drive::Paused { remaining, .. } => *remaining,
        }
    }

    fn reset(&mut self, rng: &mut SimRng) -> bool {
        self.redraw_initial_state(rng);
        true
    }

    fn advance(&mut self, dt: SimDuration, rng: &mut SimRng) {
        let mut remaining_secs = dt.as_secs_f64();
        while remaining_secs > 1e-9 {
            match std::mem::replace(
                &mut self.drive,
                Drive::Paused {
                    route: vec![self.at_intersection],
                    next: 0,
                    remaining: SimDuration::ZERO,
                },
            ) {
                Drive::Moving { route, next, speed } => {
                    let target = self.config.map.intersection(route[next]);
                    let dist = self.position.distance(target);
                    let travel = speed * remaining_secs;
                    if travel < dist {
                        self.position = self.position.step_towards(target, travel);
                        self.drive = Drive::Moving { route, next, speed };
                        remaining_secs = 0.0;
                    } else {
                        remaining_secs -= if speed > 0.0 {
                            dist / speed
                        } else {
                            remaining_secs
                        };
                        let reached = route[next];
                        self.arrive_at(reached, route, next + 1, rng);
                    }
                }
                Drive::Paused {
                    route,
                    next,
                    remaining,
                } => {
                    if remaining == SimDuration::MAX {
                        self.drive = Drive::Paused {
                            route,
                            next,
                            remaining,
                        };
                        return;
                    }
                    let pause_secs = remaining.as_secs_f64();
                    if pause_secs > remaining_secs {
                        self.drive = Drive::Paused {
                            route,
                            next,
                            remaining: remaining - SimDuration::from_secs_f64(remaining_secs),
                        };
                        remaining_secs = 0.0;
                    } else {
                        remaining_secs -= pause_secs;
                        if next == 0 || next >= route.len() {
                            self.plan_new_trip(rng);
                        } else {
                            let speed = self.segment_speed(&route, next);
                            self.drive = Drive::Moving { route, next, speed };
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campus_map_is_valid_and_connected() {
        let map = StreetMap::campus();
        assert_eq!(map.intersection_count(), 20);
        assert!(!map.roads().is_empty());
        // Every pair of intersections is routable.
        for from in 0..map.intersection_count() {
            for to in 0..map.intersection_count() {
                let route = map.fastest_route(from, to).expect("connected map");
                assert_eq!(*route.first().unwrap(), from);
                assert_eq!(*route.last().unwrap(), to);
            }
        }
    }

    #[test]
    fn campus_speed_limits_match_paper_range() {
        let map = StreetMap::campus();
        for road in map.roads() {
            assert!(
                (8.0..=13.0).contains(&road.speed_limit),
                "paper: city speeds are between 8 and 13 m/s, got {}",
                road.speed_limit
            );
        }
    }

    #[test]
    fn popular_roads_attract_more_weight() {
        let map = StreetMap::campus();
        // Intersection on the popular central avenue (row 1, col 2) vs a corner.
        let busy = map.intersection_popularity(5 + 2);
        let corner = map.intersection_popularity(0);
        assert!(busy > corner, "central intersections must be more popular");
    }

    #[test]
    fn fastest_route_prefers_fast_roads() {
        // Triangle: A--B slow direct, A--C--B fast detour of equal length per leg.
        let mut b = StreetMapBuilder::new();
        let a = b.intersection(Point::new(0.0, 0.0));
        let bb = b.intersection(Point::new(200.0, 0.0));
        let c = b.intersection(Point::new(100.0, 10.0));
        b.road(a, bb, 1.0, 1.0); // 200 m at 1 m/s = 200 s
        b.road(a, c, 10.0, 1.0); // ~100 m at 10 m/s = ~10 s
        b.road(c, bb, 10.0, 1.0);
        let map = b.build().unwrap();
        let route = map.fastest_route(a, bb).unwrap();
        assert_eq!(route, vec![a, c, bb], "the fast detour must win");
    }

    #[test]
    fn builder_rejects_malformed_maps() {
        assert_eq!(
            StreetMapBuilder::new().build().unwrap_err(),
            StreetMapError::Empty
        );

        let mut b = StreetMapBuilder::new();
        let i = b.intersection(Point::ORIGIN);
        b.road(i, 7, 10.0, 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            StreetMapError::DanglingRoad { road: 0 }
        );

        let mut b = StreetMapBuilder::new();
        let i = b.intersection(Point::ORIGIN);
        b.road(i, i, 10.0, 1.0);
        assert_eq!(b.build().unwrap_err(), StreetMapError::SelfLoop { road: 0 });

        let mut b = StreetMapBuilder::new();
        let i = b.intersection(Point::ORIGIN);
        let j = b.intersection(Point::new(1.0, 0.0));
        b.road(i, j, 0.0, 1.0);
        assert_eq!(
            b.build().unwrap_err(),
            StreetMapError::InvalidSpeedLimit { road: 0 }
        );

        let mut b = StreetMapBuilder::new();
        b.intersection(Point::ORIGIN);
        b.intersection(Point::new(10.0, 0.0));
        assert_eq!(
            b.build().unwrap_err(),
            StreetMapError::Disconnected { intersection: 1 }
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = StreetMapError::Disconnected { intersection: 3 };
        assert!(err.to_string().contains("3"));
    }

    #[test]
    fn node_positions_stay_on_the_map_area() {
        let config = CitySectionConfig::paper_campus();
        let area = config.map.area();
        let mut rng = SimRng::seed_from(17);
        let mut node = CitySection::new(config, &mut rng);
        for _ in 0..5_000 {
            node.advance(SimDuration::from_millis(500), &mut rng);
            assert!(
                area.contains(node.position()),
                "left the campus at {}",
                node.position()
            );
        }
    }

    #[test]
    fn node_speed_respects_road_limits() {
        let config = CitySectionConfig::paper_campus();
        let mut rng = SimRng::seed_from(19);
        let mut node = CitySection::new(config, &mut rng);
        for _ in 0..2_000 {
            node.advance(SimDuration::from_millis(300), &mut rng);
            let s = node.speed();
            assert!(
                s == 0.0 || (8.0..=13.0).contains(&s),
                "speed {s} outside road limits"
            );
        }
    }

    #[test]
    fn node_sometimes_pauses_and_sometimes_moves() {
        let config = CitySectionConfig::paper_campus();
        let mut rng = SimRng::seed_from(23);
        let mut node = CitySection::new(config, &mut rng);
        let mut paused = 0;
        let mut moving = 0;
        for _ in 0..5_000 {
            node.advance(SimDuration::from_millis(500), &mut rng);
            if node.speed() == 0.0 {
                paused += 1;
            } else {
                moving += 1;
            }
        }
        assert!(moving > 0, "node must actually drive");
        assert!(
            paused > 0,
            "with 30% stop probability some pauses must happen"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed: u64| {
            let config = CitySectionConfig::paper_campus();
            let mut rng = SimRng::seed_from(seed);
            let mut node = CitySection::new(config, &mut rng);
            for _ in 0..500 {
                node.advance(SimDuration::from_millis(700), &mut rng);
            }
            node.position()
        };
        assert_eq!(run(31), run(31));
        assert_ne!(run(31), run(32));
    }

    #[test]
    fn from_intersection_starts_there() {
        let config = CitySectionConfig::paper_campus();
        let mut rng = SimRng::seed_from(1);
        let node = CitySection::from_intersection(config.clone(), 7, &mut rng);
        assert_eq!(node.position(), config.map.intersection(7));
        assert_eq!(node.last_intersection(), 7);
    }

    #[test]
    fn transition_time_tracks_the_drive_state() {
        let config = CitySectionConfig::paper_campus();
        let mut rng = SimRng::seed_from(29);
        let mut node = CitySection::new(config, &mut rng);
        // Freshly planned trip: moving towards the next intersection.
        let speed = node.speed();
        assert!(speed > 0.0);
        let expected_secs = node.time_to_transition().as_secs_f64();
        // The first leg of a campus route is at most one block (300 m at the
        // map's diagonal-free grid) away.
        assert!(expected_secs > 0.0 && expected_secs <= 300.0 / 8.0 + 1.0);
        // Drive until a pause happens; the transition time must then equal the
        // remaining pause and count down under advance.
        for _ in 0..10_000 {
            node.advance(SimDuration::from_millis(250), &mut rng);
            if node.speed() == 0.0 {
                break;
            }
        }
        assert_eq!(
            node.speed(),
            0.0,
            "30% stop probability must pause eventually"
        );
        let before = node.time_to_transition();
        assert!(before > SimDuration::ZERO);
        node.advance(SimDuration::from_millis(100), &mut rng);
        if node.speed() == 0.0 {
            assert_eq!(
                node.time_to_transition(),
                before - SimDuration::from_millis(100)
            );
        }
    }

    #[test]
    fn reset_is_bit_identical_to_a_fresh_construction() {
        let config = CitySectionConfig::paper_campus();
        let mut walk_rng = SimRng::seed_from(41);
        let mut recycled = CitySection::new(config.clone(), &mut walk_rng);
        for _ in 0..300 {
            recycled.advance(SimDuration::from_millis(700), &mut walk_rng);
        }
        let mut recycled_rng = SimRng::seed_from(13);
        let mut fresh_rng = SimRng::seed_from(13);
        assert!(recycled.reset(&mut recycled_rng));
        let mut fresh = CitySection::new(config, &mut fresh_rng);
        assert_eq!(recycled.position(), fresh.position());
        assert_eq!(recycled.last_intersection(), fresh.last_intersection());
        for _ in 0..200 {
            recycled.advance(SimDuration::from_millis(400), &mut recycled_rng);
            fresh.advance(SimDuration::from_millis(400), &mut fresh_rng);
            assert_eq!(recycled.position(), fresh.position());
            assert_eq!(recycled.speed(), fresh.speed());
        }
        assert_eq!(
            recycled_rng.uniform_u64(0, u64::MAX),
            fresh_rng.uniform_u64(0, u64::MAX),
            "reset must consume the RNG exactly like the constructor"
        );
    }

    #[test]
    fn single_intersection_map_parks_forever() {
        let mut b = StreetMapBuilder::new();
        b.intersection(Point::ORIGIN);
        let map = Arc::new(b.build().unwrap());
        let config = CitySectionConfig {
            map,
            pause_probability: 0.0,
            pause_min: SimDuration::ZERO,
            pause_max: SimDuration::ZERO,
        };
        let mut rng = SimRng::seed_from(2);
        let mut node = CitySection::new(config, &mut rng);
        for _ in 0..10 {
            node.advance(SimDuration::from_secs(10), &mut rng);
        }
        assert_eq!(node.position(), Point::ORIGIN);
        assert_eq!(node.speed(), 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// A city-section node never leaves the map's bounding area and never
        /// exceeds the fastest speed limit of the map, for any seed and tick size.
        #[test]
        fn containment_and_speed_cap(seed in any::<u64>(), step_ms in 50u64..3_000) {
            let config = CitySectionConfig::paper_campus();
            let area = config.map.area();
            let max_limit = config
                .map
                .roads()
                .iter()
                .map(|r| r.speed_limit)
                .fold(0.0f64, f64::max);
            let mut rng = SimRng::seed_from(seed);
            let mut node = CitySection::new(config, &mut rng);
            let dt = SimDuration::from_millis(step_ms);
            for _ in 0..300 {
                let before = node.position();
                node.advance(dt, &mut rng);
                prop_assert!(area.contains(node.position()));
                let moved = before.distance(node.position());
                prop_assert!(moved <= max_limit * dt.as_secs_f64() + 1e-6);
            }
        }

        /// Routes returned by Dijkstra are simple paths along existing roads.
        #[test]
        fn routes_follow_roads(from in 0usize..20, to in 0usize..20) {
            let map = StreetMap::campus();
            let route = map.fastest_route(from, to).unwrap();
            prop_assert_eq!(*route.first().unwrap(), from);
            prop_assert_eq!(*route.last().unwrap(), to);
            for pair in route.windows(2) {
                prop_assert!(map.road_between(pair[0], pair[1]).is_some(),
                    "route hops {} -> {} without a road", pair[0], pair[1]);
            }
            let unique: std::collections::HashSet<_> = route.iter().collect();
            prop_assert_eq!(unique.len(), route.len(), "route must not revisit intersections");
        }
    }
}
