//! # mobility — MANET mobility models
//!
//! Movement substrates for the reproduction of *"Frugal Event Dissemination in
//! a Mobile Environment"* (Middleware 2005). The paper evaluates its protocol
//! under the two most popular MANET mobility models, both implemented here:
//!
//! * [`RandomWaypoint`](random_waypoint::RandomWaypoint) — nodes alternate
//!   straight-line trips to uniformly random waypoints with pause times
//!   (used for Figures 11, 12 and the frugality comparison, Figures 17–20);
//! * [`CitySection`](city_section::CitySection) — nodes drive on a street
//!   network with per-road speed limits, popularity-weighted destinations and
//!   intersection pauses (used for Figures 13–16);
//!
//! plus a [`Stationary`](model::Stationary) model, geometric primitives
//! ([`Point`], [`Area`]) and trace recording/replay
//! ([`trace::TraceRecorder`], [`trace::TraceReplay`]) so different protocols
//! can be compared on identical node movements.
//!
//! # Examples
//!
//! ```
//! use mobility::{MobilityModel, RandomWaypoint, RandomWaypointConfig};
//! use simkit::{SimDuration, SimRng};
//!
//! let mut rng = SimRng::seed_from(1);
//! let config = RandomWaypointConfig::paper_fixed_speed(10.0);
//! let mut node = RandomWaypoint::new(config, &mut rng);
//! for _ in 0..60 {
//!     node.advance(SimDuration::from_secs(1), &mut rng);
//! }
//! assert!(config.area.contains(node.position()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod city_section;
pub mod model;
pub mod point;
pub mod random_waypoint;
pub mod trace;

pub use city_section::{CitySection, CitySectionConfig, StreetMap, StreetMapBuilder};
pub use model::{BoxedMobility, MobilityModel, Stationary};
pub use point::{Area, Point, Vector};
pub use random_waypoint::{RandomWaypoint, RandomWaypointConfig};
pub use trace::{MobilityTrace, TraceRecorder, TraceReplay};
