//! Mobility trace recording and replay.
//!
//! A [`TraceRecorder`] samples the positions produced by any
//! [`MobilityModel`]; the resulting [`MobilityTrace`] can be replayed later
//! with [`TraceReplay`], which itself implements [`MobilityModel`]. Traces make
//! it possible to compare dissemination protocols on *identical* node movements
//! (the frugality experiments of Figures 17–20 compare four protocols under the
//! same mobility), and to write deterministic regression tests.

use crate::model::MobilityModel;
use crate::point::Point;
use serde::{Deserialize, Serialize};
use simkit::{SimDuration, SimRng, SimTime};

/// One sampled position of one process.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceSample {
    /// Virtual time of the sample.
    pub time: SimTime,
    /// Position at that time.
    pub position: Point,
    /// Instantaneous speed at that time, in m/s.
    pub speed: f64,
}

/// A time-ordered list of position samples for one process.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MobilityTrace {
    samples: Vec<TraceSample>,
}

impl MobilityTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        MobilityTrace::default()
    }

    /// Appends a sample.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the previous sample (traces are
    /// append-only and time ordered).
    pub fn push(&mut self, time: SimTime, position: Point, speed: f64) {
        if let Some(last) = self.samples.last() {
            assert!(time >= last.time, "trace samples must be time-ordered");
        }
        self.samples.push(TraceSample {
            time,
            position,
            speed,
        });
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` if the trace holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Iterates over the samples in time order.
    pub fn iter(&self) -> impl Iterator<Item = &TraceSample> {
        self.samples.iter()
    }

    /// The position at `time`, linearly interpolated between the surrounding
    /// samples; clamped to the first/last sample outside the recorded range.
    /// Returns `None` for an empty trace.
    pub fn position_at(&self, time: SimTime) -> Option<Point> {
        let samples = &self.samples;
        if samples.is_empty() {
            return None;
        }
        if time <= samples[0].time {
            return Some(samples[0].position);
        }
        if time >= samples[samples.len() - 1].time {
            return Some(samples[samples.len() - 1].position);
        }
        let idx = samples.partition_point(|s| s.time <= time);
        let before = &samples[idx - 1];
        let after = &samples[idx];
        let span = (after.time - before.time).as_millis() as f64;
        if span == 0.0 {
            return Some(after.position);
        }
        let t = (time - before.time).as_millis() as f64 / span;
        Some(before.position.lerp(after.position, t))
    }

    /// Total distance covered by the trace, in meters.
    pub fn total_distance(&self) -> f64 {
        self.samples
            .windows(2)
            .map(|w| w[0].position.distance(w[1].position))
            .sum()
    }
}

/// Records the movement of an inner mobility model while forwarding it.
#[derive(Debug)]
pub struct TraceRecorder<M> {
    inner: M,
    trace: MobilityTrace,
    now: SimTime,
}

impl<M: MobilityModel> TraceRecorder<M> {
    /// Wraps `inner`, recording its initial position as the first sample.
    pub fn new(inner: M) -> Self {
        let mut trace = MobilityTrace::new();
        trace.push(SimTime::ZERO, inner.position(), inner.speed());
        TraceRecorder {
            inner,
            trace,
            now: SimTime::ZERO,
        }
    }

    /// The trace recorded so far.
    pub fn trace(&self) -> &MobilityTrace {
        &self.trace
    }

    /// Stops recording and returns the trace.
    pub fn into_trace(self) -> MobilityTrace {
        self.trace
    }
}

impl<M: MobilityModel> MobilityModel for TraceRecorder<M> {
    fn position(&self) -> Point {
        self.inner.position()
    }

    fn speed(&self) -> f64 {
        self.inner.speed()
    }

    fn advance(&mut self, dt: SimDuration, rng: &mut SimRng) {
        self.inner.advance(dt, rng);
        self.now += dt;
        self.trace
            .push(self.now, self.inner.position(), self.inner.speed());
    }
}

/// Replays a recorded [`MobilityTrace`] as a mobility model.
#[derive(Debug, Clone)]
pub struct TraceReplay {
    trace: MobilityTrace,
    now: SimTime,
}

impl TraceReplay {
    /// Creates a replay positioned at the start of the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn new(trace: MobilityTrace) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty trace");
        TraceReplay {
            trace,
            now: SimTime::ZERO,
        }
    }
}

impl MobilityModel for TraceReplay {
    fn position(&self) -> Point {
        self.trace
            .position_at(self.now)
            .expect("trace verified non-empty at construction")
    }

    fn speed(&self) -> f64 {
        // Report the speed of the most recent sample at or before `now`.
        let idx = self.trace.samples.partition_point(|s| s.time <= self.now);
        let idx = idx.saturating_sub(1);
        self.trace.samples[idx].speed
    }

    fn advance(&mut self, dt: SimDuration, _rng: &mut SimRng) {
        self.now += dt;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Stationary;
    use crate::point::Area;
    use crate::random_waypoint::{RandomWaypoint, RandomWaypointConfig};

    #[test]
    fn trace_push_and_interpolate() {
        let mut trace = MobilityTrace::new();
        trace.push(SimTime::ZERO, Point::new(0.0, 0.0), 1.0);
        trace.push(SimTime::from_secs(10), Point::new(100.0, 0.0), 1.0);
        assert_eq!(trace.len(), 2);
        assert_eq!(
            trace.position_at(SimTime::from_secs(5)),
            Some(Point::new(50.0, 0.0))
        );
        assert_eq!(trace.position_at(SimTime::ZERO), Some(Point::new(0.0, 0.0)));
        // Clamping outside the range.
        assert_eq!(
            trace.position_at(SimTime::from_secs(99)),
            Some(Point::new(100.0, 0.0))
        );
        assert_eq!(trace.total_distance(), 100.0);
    }

    #[test]
    fn empty_trace_has_no_position() {
        assert_eq!(MobilityTrace::new().position_at(SimTime::ZERO), None);
        assert!(MobilityTrace::new().is_empty());
    }

    #[test]
    #[should_panic]
    fn trace_rejects_time_travel() {
        let mut trace = MobilityTrace::new();
        trace.push(SimTime::from_secs(5), Point::ORIGIN, 0.0);
        trace.push(SimTime::from_secs(1), Point::ORIGIN, 0.0);
    }

    #[test]
    fn recorder_captures_stationary_node() {
        let mut rng = SimRng::seed_from(1);
        let mut rec = TraceRecorder::new(Stationary::new(Point::new(5.0, 5.0)));
        for _ in 0..10 {
            rec.advance(SimDuration::from_secs(1), &mut rng);
        }
        let trace = rec.into_trace();
        assert_eq!(trace.len(), 11);
        assert_eq!(trace.total_distance(), 0.0);
    }

    #[test]
    fn replay_matches_recording_at_sample_points() {
        let mut rng = SimRng::seed_from(77);
        let config =
            RandomWaypointConfig::new(Area::square(500.0), 5.0, 15.0, SimDuration::from_secs(1));
        let node = RandomWaypoint::new(config, &mut rng);
        let mut rec = TraceRecorder::new(node);
        let dt = SimDuration::from_millis(250);
        let mut recorded_positions = vec![rec.position()];
        for _ in 0..200 {
            rec.advance(dt, &mut rng);
            recorded_positions.push(rec.position());
        }
        let trace = rec.into_trace();

        let mut replay = TraceReplay::new(trace);
        let mut replay_rng = SimRng::seed_from(0); // replay ignores the RNG
        assert_eq!(replay.position(), recorded_positions[0]);
        for expected in recorded_positions.iter().skip(1) {
            replay.advance(dt, &mut replay_rng);
            let got = replay.position();
            assert!(
                got.distance(*expected) < 1e-6,
                "replay diverged: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn replay_interpolates_between_samples() {
        let mut trace = MobilityTrace::new();
        trace.push(SimTime::ZERO, Point::new(0.0, 0.0), 2.0);
        trace.push(SimTime::from_secs(2), Point::new(4.0, 0.0), 2.0);
        let mut replay = TraceReplay::new(trace);
        let mut rng = SimRng::seed_from(0);
        replay.advance(SimDuration::from_secs(1), &mut rng);
        assert_eq!(replay.position(), Point::new(2.0, 0.0));
        assert_eq!(replay.speed(), 2.0);
    }

    #[test]
    #[should_panic]
    fn replay_rejects_empty_trace() {
        let _ = TraceReplay::new(MobilityTrace::new());
    }
}
