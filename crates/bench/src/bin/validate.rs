//! Paper-scale spot checks used to fill `EXPERIMENTS.md`.
//!
//! The full `reproduce --paper` sweep replays every cell of every figure with
//! the paper's 30-seed methodology and takes hours. This binary instead
//! re-measures a *representative subset* of cells at the paper's population and
//! area (150 nodes, 25 km² for random waypoint; 15 nodes on the campus map for
//! city section) with a reduced seed count, and prints them side by side with
//! the values the paper reports. It is what the "measured" column of
//! `EXPERIMENTS.md` comes from.
//!
//! Run with: `cargo run --release -p bench --bin validate`

use manet_sim::experiments::city::{fig13, fig16, CityConfig};
use manet_sim::experiments::fig11::{self, Fig11Config};
use manet_sim::experiments::frugality::{self, FrugalityConfig};
use manet_sim::experiments::Effort;
use manet_sim::SeedPlan;
use simkit::SimDuration;

fn main() {
    let t0 = std::time::Instant::now();
    println!("# Paper-scale spot checks (reduced seed count)\n");

    // ------------------------------------------------------------------
    // Fig. 11 — random waypoint reliability, 80 % subscribers.
    // Paper: 10 m/s + 180 s validity => ~95 % reliability; 30 m/s + 90 s => ~95 %.
    // ------------------------------------------------------------------
    let config = Fig11Config {
        speeds: vec![10.0, 30.0],
        validities: vec![SimDuration::from_secs(90), SimDuration::from_secs(180)],
        subscriber_fractions: vec![0.8],
        seeds: SeedPlan::new(1, 5),
        effort: Effort::Paper,
    };
    match fig11::run(&config) {
        Ok(tables) => {
            println!("## Fig. 11 spot checks (150 nodes, 25 km2, 80% subscribers, 5 seeds)\n");
            println!("{}", tables[0].to_markdown());
            println!(
                "Paper reference points: 10 m/s with 180 s validity ~= 0.95; 30 m/s with 90 s validity ~= 0.95.\n"
            );
        }
        Err(err) => eprintln!("fig11 spot check failed: {err}"),
    }
    eprintln!("[fig11 done after {:.0?}]", t0.elapsed());

    // ------------------------------------------------------------------
    // Fig. 13 / 16 — city section at full methodology but 5 seeds.
    // ------------------------------------------------------------------
    let mut city = CityConfig::paper();
    city.seeds = SeedPlan::new(1, 5);
    match fig13(&city) {
        Ok(table) => {
            println!("## Fig. 13 spot checks (15 cars, campus map, all publishers, 5 seeds)\n");
            println!("{}", table.to_markdown());
            println!("Paper reference: 76.9% / 75.1% / 65.5% / 69.9% / 54.0% for 1-5 s.\n");
        }
        Err(err) => eprintln!("fig13 spot check failed: {err}"),
    }
    eprintln!("[fig13 done after {:.0?}]", t0.elapsed());

    let mut city16 = CityConfig::paper();
    city16.seeds = SeedPlan::new(1, 5);
    city16.validities = vec![
        SimDuration::from_secs(25),
        SimDuration::from_secs(75),
        SimDuration::from_secs(150),
    ];
    match fig16(&city16) {
        Ok(table) => {
            println!("## Fig. 16 spot checks (15 cars, campus map, all publishers, 5 seeds)\n");
            println!("{}", table.to_markdown());
            println!("Paper reference: 11% at 25 s, 44% at 75 s, 77% at 150 s.\n");
        }
        Err(err) => eprintln!("fig16 spot check failed: {err}"),
    }
    eprintln!("[fig16 done after {:.0?}]", t0.elapsed());

    // ------------------------------------------------------------------
    // Fig. 17-20 — one paper-scale cell of the frugality comparison.
    // ------------------------------------------------------------------
    let frugality_config = FrugalityConfig {
        subscriber_fractions: vec![0.6],
        event_counts: vec![10],
        protocols: FrugalityConfig::all_protocols(),
        seeds: SeedPlan::new(1, 2),
        effort: Effort::Paper,
        measurement: SimDuration::from_secs(180),
    };
    match frugality::run(&frugality_config) {
        Ok(tables) => {
            println!("## Fig. 17-20 spot checks (150 nodes, 10 m/s, 10 events, 60% subscribers, 2 seeds)\n");
            println!("{}", tables.bandwidth_kb.to_markdown());
            println!("{}", tables.events_sent.to_markdown());
            println!("{}", tables.duplicates.to_markdown());
            println!("{}", tables.parasites.to_markdown());
            println!(
                "Paper reference: frugal saves 300-450% of the bandwidth, sends 50-100x fewer events,\n\
                 receives 70-100x fewer duplicates and 50-90x fewer parasites than the flooding variants.\n"
            );
        }
        Err(err) => eprintln!("frugality spot check failed: {err}"),
    }
    eprintln!("[all spot checks done after {:.0?}]", t0.elapsed());
}
