//! Regenerates the tables behind every figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- [EXPERIMENT] [--paper] [--csv]
//! ```
//!
//! `EXPERIMENT` is one of `fig11`, `fig12`, `fig13`, `fig14`, `fig15`, `fig16`,
//! `fig17`, `fig18`, `fig19`, `fig20`, `frugality` (= fig17–20 in one sweep),
//! `ablation`, or `all` (the default). Without `--paper` the reduced smoke
//! configurations are used (seconds to minutes); with `--paper` the paper's
//! full methodology runs (150 nodes, 30 seeds — hours). `--csv` prints CSV
//! instead of Markdown.

use manet_sim::experiments::{ablation, city, fig11, fig12, frugality};
use manet_sim::DataTable;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Quick,
    Paper,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Markdown,
    Csv,
}

fn print_table(table: &DataTable, format: Format) {
    match format {
        Format::Markdown => println!("{}", table.to_markdown()),
        Format::Csv => {
            println!("# {}", table.title());
            println!("{}", table.to_csv());
        }
    }
}

fn run_fig11(scale: Scale, format: Format) {
    let config = match scale {
        Scale::Paper => fig11::Fig11Config::paper(),
        Scale::Quick => fig11::Fig11Config::quick(),
    };
    match fig11::run(&config) {
        Ok(tables) => tables.iter().for_each(|t| print_table(t, format)),
        Err(err) => eprintln!("fig11 failed: {err}"),
    }
}

fn run_fig12(scale: Scale, format: Format) {
    let config = match scale {
        Scale::Paper => fig12::Fig12Config::paper(),
        Scale::Quick => fig12::Fig12Config::quick(),
    };
    match fig12::run(&config) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("fig12 failed: {err}"),
    }
}

fn city_config(scale: Scale) -> city::CityConfig {
    match scale {
        Scale::Paper => city::CityConfig::paper(),
        Scale::Quick => city::CityConfig::quick(),
    }
}

fn run_fig13(scale: Scale, format: Format) {
    match city::fig13(&city_config(scale)) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("fig13 failed: {err}"),
    }
}

fn run_fig14_15(scale: Scale, format: Format, want14: bool, want15: bool) {
    match city::fig14_15(&city_config(scale)) {
        Ok((fig14, fig15)) => {
            if want14 {
                print_table(&fig14, format);
            }
            if want15 {
                print_table(&fig15, format);
            }
        }
        Err(err) => eprintln!("fig14/15 failed: {err}"),
    }
}

fn run_fig16(scale: Scale, format: Format) {
    match city::fig16(&city_config(scale)) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("fig16 failed: {err}"),
    }
}

fn run_frugality(scale: Scale, format: Format, figures: &[u8]) {
    let config = match scale {
        Scale::Paper => frugality::FrugalityConfig::paper(),
        Scale::Quick => frugality::FrugalityConfig::quick(),
    };
    match frugality::run(&config) {
        Ok(tables) => {
            if figures.contains(&17) {
                print_table(&tables.bandwidth_kb, format);
            }
            if figures.contains(&18) {
                print_table(&tables.events_sent, format);
            }
            if figures.contains(&19) {
                print_table(&tables.duplicates, format);
            }
            if figures.contains(&20) {
                print_table(&tables.parasites, format);
            }
        }
        Err(err) => eprintln!("frugality comparison failed: {err}"),
    }
}

fn run_ablation(scale: Scale, format: Format) {
    let config = match scale {
        Scale::Paper => ablation::AblationConfig::paper(),
        Scale::Quick => ablation::AblationConfig::quick(),
    };
    match ablation::run(&config) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("ablation failed: {err}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let format = if args.iter().any(|a| a == "--csv") {
        Format::Csv
    } else {
        Format::Markdown
    };
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_lowercase();

    if scale == Scale::Quick {
        eprintln!(
            "# Running at smoke-test scale (reduced population, seeds and durations).\n\
             # Pass --paper for the full Section 5.1 methodology (much slower).\n"
        );
    }

    match experiment.as_str() {
        "fig11" => run_fig11(scale, format),
        "fig12" => run_fig12(scale, format),
        "fig13" => run_fig13(scale, format),
        "fig14" => run_fig14_15(scale, format, true, false),
        "fig15" => run_fig14_15(scale, format, false, true),
        "fig16" => run_fig16(scale, format),
        "fig17" => run_frugality(scale, format, &[17]),
        "fig18" => run_frugality(scale, format, &[18]),
        "fig19" => run_frugality(scale, format, &[19]),
        "fig20" => run_frugality(scale, format, &[20]),
        "frugality" => run_frugality(scale, format, &[17, 18, 19, 20]),
        "ablation" => run_ablation(scale, format),
        "all" => {
            run_fig11(scale, format);
            run_fig12(scale, format);
            run_fig13(scale, format);
            run_fig14_15(scale, format, true, true);
            run_fig16(scale, format);
            run_frugality(scale, format, &[17, 18, 19, 20]);
            run_ablation(scale, format);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of fig11..fig20, frugality, ablation, all"
            );
            std::process::exit(2);
        }
    }
}
