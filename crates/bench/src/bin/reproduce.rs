//! Regenerates the tables behind every figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin reproduce -- [EXPERIMENT] [--paper] [--csv]
//! cargo run --release -p bench --bin reproduce -- --scenario FILE.toml \
//!     [--sweep param=v1,v2]... [--seeds N] [--first-seed N] \
//!     [--workers N] [--shards N|auto] [--verbose] [--csv]
//! ```
//!
//! `EXPERIMENT` is one of `fig11`, `fig12`, `fig13`, `fig14`, `fig15`, `fig16`,
//! `fig17`, `fig18`, `fig19`, `fig20`, `frugality` (= fig17–20 in one sweep),
//! `ablation`, or `all` (the default). Without `--paper` the reduced smoke
//! configurations are used (seconds to minutes); with `--paper` the paper's
//! full methodology runs (150 nodes, 30 seeds — hours). `--csv` prints CSV
//! instead of Markdown.
//!
//! `--scenario` switches to the declarative path: the TOML file is compiled
//! into an experiment matrix (see `manet_sim::scenario_compile` for the
//! schema and `examples/*.toml` for worked files), every point runs through
//! the sharded multi-seed runner, and one table is printed with a row per
//! matrix point. `--sweep param=v1,v2` adds a sweep axis from the command
//! line (repeatable; overrides a file axis sweeping the same parameter), and
//! `--seeds` / `--first-seed` override the file's `[seeds]` section.
//! `--shards` defaults to `auto`, which splits `available_parallelism()`
//! across the seed workers (the resolved count is echoed in the run header);
//! `--verbose` prints the sharded engine's debug counters — widened windows,
//! fused batches, repartition passes — after each matrix point.

use manet_sim::experiments::{ablation, city, fig11, fig12, frugality};
use manet_sim::{
    compile_path, run_scenario_reports_sharded_with_stats, DataTable, ExperimentPoint, SweepAxis,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    Quick,
    Paper,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Format {
    Markdown,
    Csv,
}

fn print_table(table: &DataTable, format: Format) {
    match format {
        Format::Markdown => println!("{}", table.to_markdown()),
        Format::Csv => {
            println!("# {}", table.title());
            println!("{}", table.to_csv());
        }
    }
}

fn run_fig11(scale: Scale, format: Format) {
    let config = match scale {
        Scale::Paper => fig11::Fig11Config::paper(),
        Scale::Quick => fig11::Fig11Config::quick(),
    };
    match fig11::run(&config) {
        Ok(tables) => tables.iter().for_each(|t| print_table(t, format)),
        Err(err) => eprintln!("fig11 failed: {err}"),
    }
}

fn run_fig12(scale: Scale, format: Format) {
    let config = match scale {
        Scale::Paper => fig12::Fig12Config::paper(),
        Scale::Quick => fig12::Fig12Config::quick(),
    };
    match fig12::run(&config) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("fig12 failed: {err}"),
    }
}

fn city_config(scale: Scale) -> city::CityConfig {
    match scale {
        Scale::Paper => city::CityConfig::paper(),
        Scale::Quick => city::CityConfig::quick(),
    }
}

fn run_fig13(scale: Scale, format: Format) {
    match city::fig13(&city_config(scale)) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("fig13 failed: {err}"),
    }
}

fn run_fig14_15(scale: Scale, format: Format, want14: bool, want15: bool) {
    match city::fig14_15(&city_config(scale)) {
        Ok((fig14, fig15)) => {
            if want14 {
                print_table(&fig14, format);
            }
            if want15 {
                print_table(&fig15, format);
            }
        }
        Err(err) => eprintln!("fig14/15 failed: {err}"),
    }
}

fn run_fig16(scale: Scale, format: Format) {
    match city::fig16(&city_config(scale)) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("fig16 failed: {err}"),
    }
}

fn run_frugality(scale: Scale, format: Format, figures: &[u8]) {
    let config = match scale {
        Scale::Paper => frugality::FrugalityConfig::paper(),
        Scale::Quick => frugality::FrugalityConfig::quick(),
    };
    match frugality::run(&config) {
        Ok(tables) => {
            if figures.contains(&17) {
                print_table(&tables.bandwidth_kb, format);
            }
            if figures.contains(&18) {
                print_table(&tables.events_sent, format);
            }
            if figures.contains(&19) {
                print_table(&tables.duplicates, format);
            }
            if figures.contains(&20) {
                print_table(&tables.parasites, format);
            }
        }
        Err(err) => eprintln!("frugality comparison failed: {err}"),
    }
}

fn run_ablation(scale: Scale, format: Format) {
    let config = match scale {
        Scale::Paper => ablation::AblationConfig::paper(),
        Scale::Quick => ablation::AblationConfig::quick(),
    };
    match ablation::run(&config) {
        Ok(table) => print_table(&table, format),
        Err(err) => eprintln!("ablation failed: {err}"),
    }
}

/// Options of the `--scenario` mode, collected from the command line.
#[derive(Debug)]
struct ScenarioArgs {
    path: String,
    sweeps: Vec<SweepAxis>,
    seeds: Option<u64>,
    first_seed: Option<u64>,
    workers: usize,
    shards: ShardCount,
    verbose: bool,
}

/// The `--shards` flag: an explicit count, or `auto` (the default), which
/// gives each seed worker an equal slice of `available_parallelism()` —
/// `workers × shards ≈ cores`, the split the sharded runner documents.
#[derive(Debug, Clone, Copy)]
enum ShardCount {
    Auto,
    Fixed(usize),
}

impl ShardCount {
    fn resolve(self, workers: usize) -> usize {
        match self {
            ShardCount::Fixed(shards) => shards,
            ShardCount::Auto => {
                let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                (cores / workers.max(1)).max(1)
            }
        }
    }
}

/// Parses the arguments that follow `--scenario`. Exits with a diagnostic on
/// a malformed flag, mirroring the unknown-experiment path.
fn parse_scenario_args(args: &[String]) -> ScenarioArgs {
    fn value_of<'a>(args: &'a [String], index: usize, flag: &str) -> &'a str {
        args.get(index + 1).map(String::as_str).unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    }
    fn numeric<T: std::str::FromStr>(text: &str, flag: &str) -> T {
        text.parse().unwrap_or_else(|_| {
            eprintln!("{flag}: `{text}` is not a valid value");
            std::process::exit(2);
        })
    }
    let mut options = ScenarioArgs {
        path: String::new(),
        sweeps: Vec::new(),
        seeds: None,
        first_seed: None,
        workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
        shards: ShardCount::Auto,
        verbose: false,
    };
    let mut index = 0;
    while index < args.len() {
        match args[index].as_str() {
            "--scenario" => {
                options.path = value_of(args, index, "--scenario").to_owned();
                index += 2;
            }
            "--sweep" => {
                let spec = value_of(args, index, "--sweep");
                match spec.parse::<SweepAxis>() {
                    Ok(axis) => options.sweeps.push(axis),
                    Err(err) => {
                        eprintln!("--sweep: {err}");
                        std::process::exit(2);
                    }
                }
                index += 2;
            }
            "--seeds" => {
                options.seeds = Some(numeric(value_of(args, index, "--seeds"), "--seeds"));
                index += 2;
            }
            "--first-seed" => {
                options.first_seed = Some(numeric(
                    value_of(args, index, "--first-seed"),
                    "--first-seed",
                ));
                index += 2;
            }
            "--workers" => {
                options.workers =
                    numeric::<usize>(value_of(args, index, "--workers"), "--workers").max(1);
                index += 2;
            }
            "--shards" => {
                let value = value_of(args, index, "--shards");
                options.shards = if value == "auto" {
                    ShardCount::Auto
                } else {
                    ShardCount::Fixed(numeric::<usize>(value, "--shards").max(1))
                };
                index += 2;
            }
            "--verbose" => {
                options.verbose = true;
                index += 1;
            }
            "--csv" | "--paper" => index += 1,
            other => {
                eprintln!("unknown flag {other:?} in --scenario mode");
                std::process::exit(2);
            }
        }
    }
    options
}

/// Compiles and runs a scenario file, printing one table with a row per
/// matrix point.
fn run_scenario_file(options: &ScenarioArgs, format: Format) {
    let matrix = match compile_path(&options.path, &options.sweeps) {
        Ok(matrix) => matrix,
        Err(err) => {
            eprintln!("{}: {err}", options.path);
            std::process::exit(1);
        }
    };
    let mut plan = matrix.seeds;
    if let Some(first) = options.first_seed {
        plan.first_seed = first;
    }
    if let Some(runs) = options.seeds {
        plan.runs = runs;
    }
    let shards = options.shards.resolve(options.workers);
    let shards_note = match options.shards {
        ShardCount::Auto => " [auto]",
        ShardCount::Fixed(_) => "",
    };
    eprintln!(
        "# {}: {} matrix point(s), {} seed(s) each, {} worker(s), {} shard(s){}",
        matrix.label,
        matrix.points.len(),
        plan.runs,
        options.workers,
        shards,
        shards_note
    );
    let mut table = DataTable::new(
        format!("Scenario `{}` ({})", matrix.label, options.path),
        "point",
        vec![
            "reliability".into(),
            "ci95".into(),
            "events sent".into(),
            "duplicates/process".into(),
            "parasites/process".into(),
            "bandwidth [kB/process]".into(),
        ],
    );
    for point in &matrix.points {
        let (reports, stats) = match run_scenario_reports_sharded_with_stats(
            &point.scenario,
            plan,
            options.workers,
            shards,
        ) {
            Ok(outcome) => outcome,
            Err(err) => {
                eprintln!("{}: point `{}` failed: {err}", options.path, point.label);
                std::process::exit(1);
            }
        };
        if options.verbose {
            eprintln!(
                "# point `{}`: windows_widened={} batches_fused={} repartitions={} \
                 (summed over {} seed(s))",
                point.label,
                stats.windows_widened,
                stats.batches_fused,
                stats.repartitions,
                reports.len()
            );
        }
        let mut aggregate = ExperimentPoint::new();
        for report in &reports {
            aggregate.add(report);
        }
        table.push_row(
            point.label.clone(),
            vec![
                aggregate.reliability().mean,
                aggregate.reliability().ci95_half_width(),
                aggregate.events_sent().mean,
                aggregate.duplicates().mean,
                aggregate.parasites().mean,
                aggregate.bandwidth_kb().mean,
            ],
        );
    }
    print_table(&table, format);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    let format = if args.iter().any(|a| a == "--csv") {
        Format::Csv
    } else {
        Format::Markdown
    };
    if args.iter().any(|a| a == "--scenario") {
        let options = parse_scenario_args(&args);
        run_scenario_file(&options, format);
        return;
    }
    let experiment = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all")
        .to_lowercase();

    if scale == Scale::Quick {
        eprintln!(
            "# Running at smoke-test scale (reduced population, seeds and durations).\n\
             # Pass --paper for the full Section 5.1 methodology (much slower).\n"
        );
    }

    match experiment.as_str() {
        "fig11" => run_fig11(scale, format),
        "fig12" => run_fig12(scale, format),
        "fig13" => run_fig13(scale, format),
        "fig14" => run_fig14_15(scale, format, true, false),
        "fig15" => run_fig14_15(scale, format, false, true),
        "fig16" => run_fig16(scale, format),
        "fig17" => run_frugality(scale, format, &[17]),
        "fig18" => run_frugality(scale, format, &[18]),
        "fig19" => run_frugality(scale, format, &[19]),
        "fig20" => run_frugality(scale, format, &[20]),
        "frugality" => run_frugality(scale, format, &[17, 18, 19, 20]),
        "ablation" => run_ablation(scale, format),
        "all" => {
            run_fig11(scale, format);
            run_fig12(scale, format);
            run_fig13(scale, format);
            run_fig14_15(scale, format, true, true);
            run_fig16(scale, format);
            run_frugality(scale, format, &[17, 18, 19, 20]);
            run_ablation(scale, format);
        }
        other => {
            eprintln!(
                "unknown experiment {other:?}; expected one of fig11..fig20, frugality, ablation, all"
            );
            std::process::exit(2);
        }
    }
}
