//! # bench — benchmark harness for the paper's evaluation
//!
//! This crate hosts two things:
//!
//! * the `reproduce` binary (`cargo run --release -p bench --bin reproduce`),
//!   which regenerates the tables behind every figure of the paper's
//!   evaluation section (Fig. 11–20), at smoke-test scale by default and at the
//!   paper's full scale with `--paper`;
//! * one Criterion benchmark per figure plus micro-benchmarks of the core data
//!   structures. The Criterion benches run *smoke-sized* versions of each
//!   experiment so `cargo bench` completes in minutes; they measure the cost of
//!   regenerating each figure, and their reports double as a regression harness
//!   for simulator throughput.
//!
//! The [`smoke`] module defines the single-point experiment configurations the
//! Criterion benches use.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod smoke {
    //! Single-point, single-seed experiment configurations used by the
    //! Criterion benches: small enough to run in well under a second each,
    //! while exercising exactly the same code paths as the full experiments.

    use manet_sim::experiments::{ablation, city, fig11, fig12, frugality, Effort};
    use manet_sim::SeedPlan;
    use simkit::SimDuration;

    /// A one-cell Figure 11 sweep (one speed, one validity, one seed).
    pub fn fig11() -> fig11::Fig11Config {
        fig11::Fig11Config {
            speeds: vec![10.0],
            validities: vec![SimDuration::from_secs(40)],
            subscriber_fractions: vec![0.8],
            seeds: SeedPlan::new(1, 1),
            effort: Effort::Quick,
        }
    }

    /// A one-cell Figure 12 sweep.
    pub fn fig12() -> fig12::Fig12Config {
        fig12::Fig12Config {
            speed_range: (1.0, 40.0),
            validities: vec![SimDuration::from_secs(40)],
            subscriber_fractions: vec![0.6],
            seeds: SeedPlan::new(1, 1),
            effort: Effort::Quick,
        }
    }

    /// A city-section configuration with two publishers and one seed.
    pub fn city() -> city::CityConfig {
        city::CityConfig {
            publishers: vec![0, 7],
            seeds: SeedPlan::new(1, 1),
            warmup: SimDuration::from_secs(10),
            hb_upper_bounds: vec![SimDuration::from_secs(1)],
            subscriber_fractions: vec![1.0],
            validities: vec![SimDuration::from_secs(60)],
            default_validity: SimDuration::from_secs(60),
            default_hb_upper_bound: SimDuration::from_secs(1),
            ..city::CityConfig::quick()
        }
    }

    /// A one-cell frugality comparison (all four protocols, one seed).
    pub fn frugality() -> frugality::FrugalityConfig {
        frugality::FrugalityConfig {
            subscriber_fractions: vec![0.6],
            event_counts: vec![3],
            protocols: frugality::FrugalityConfig::all_protocols(),
            seeds: SeedPlan::new(1, 1),
            effort: Effort::Quick,
            measurement: SimDuration::from_secs(30),
        }
    }

    /// A two-variant ablation (paper defaults vs. no speed adaptation).
    pub fn ablation() -> ablation::AblationConfig {
        let mut config = ablation::AblationConfig::quick();
        config.variants.truncate(2);
        config.seeds = SeedPlan::new(1, 1);
        config.validity = SimDuration::from_secs(30);
        config
    }
}

#[cfg(test)]
mod tests {
    use super::smoke;

    #[test]
    fn smoke_configs_are_single_seed() {
        assert_eq!(smoke::fig11().seeds.runs, 1);
        assert_eq!(smoke::fig12().seeds.runs, 1);
        assert_eq!(smoke::city().seeds.runs, 1);
        assert_eq!(smoke::frugality().seeds.runs, 1);
        assert_eq!(smoke::ablation().seeds.runs, 1);
    }

    #[test]
    fn smoke_fig11_runs_quickly_and_produces_a_table() {
        let tables = manet_sim::experiments::fig11::run(&smoke::fig11()).unwrap();
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows().len(), 1);
    }
}
