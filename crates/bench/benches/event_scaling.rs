//! Scaling of the event scheduler itself: the hierarchical timer wheel vs.
//! the binary-heap reference.
//!
//! Builds timer-active populations of 1000/4000/10000 nodes — stationary,
//! out of radio range of each other, running the simple-flooding protocol
//! whose 1 Hz flood tick re-arms unconditionally — and measures a full
//! 60 s world run. After the first mobility tick nothing moves and nothing
//! is ever received, so the run is almost purely scheduler work: one timer
//! event per node per simulated second (600k pops at 10k nodes), each of
//! which cancels nothing and re-arms one timer. The heap reference
//! (`World::set_heap_queue`) pays O(log n) sift work per pop and per push;
//! the wheel (default) schedules and cancels in O(1), drains same-timestamp
//! batches from one staged slot, and keeps its handles in a recycled slab.
//! The wheel must win and the gap must widen with the population (see
//! `BENCH_BASELINE.json` for captured numbers); reports stay bit-identical
//! (pinned by `tests/scheduler_equivalence.rs`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frugal::FloodingPolicy;
use manet_sim::{MobilityKind, ProtocolKind, Scenario, ScenarioBuilder, WorldArena};
use mobility::Area;
use netsim::RadioConfig;
use simkit::{EventQueue, SimDuration, SimTime, TimerWheel};

/// A scheduler-dominated scenario: every node beats its 1 s flood tick for
/// the whole run, nobody hears anybody (10 m radio range scattered over a
/// 100 km square), nobody moves, and the 1 s mobility tick is a no-op after
/// the first — the regime where the event queue itself is the floor.
fn timer_active(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("event-scaling")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::Stationary {
            area: Area::square(100_000.0),
        })
        .radio(RadioConfig::ideal(10.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(60))
        .publications(vec![])
        .mobility_tick(SimDuration::from_secs(1))
        .build()
        .expect("static scenario is valid")
}

fn bench_event_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_scaling");
    for &nodes in &[1000usize, 4000, 10000] {
        let scenario = timer_active(nodes);
        // Both sides recycle world setup through an arena, so the measured
        // difference is the scheduler cost alone.
        let mut arena = WorldArena::new();
        let mut seed = 0u64;
        group.bench_function(format!("wheel/{nodes}"), |b| {
            b.iter(|| {
                seed += 1;
                let world = arena.checkout(&scenario, seed).expect("valid scenario");
                world.run_mut().nodes.len()
            });
        });
        let mut arena = WorldArena::new();
        let mut seed = 0u64;
        group.bench_function(format!("heap/{nodes}"), |b| {
            b.iter(|| {
                seed += 1;
                let world = arena.checkout(&scenario, seed).expect("valid scenario");
                world.set_heap_queue(true);
                world.run_mut().nodes.len()
            });
        });
    }
    group.finish();
}

/// The same workload at the queue level, with the protocol stripped away:
/// `nodes` periodic timers ~1 s apart, each pop immediately re-arming its
/// timer one period later — the steady state of a timer-driven simulation.
/// This isolates the scheduler cost that the whole-run groups above dilute
/// with per-event protocol work (callback allocation, RNG, node state).
fn bench_queue_churn(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue_churn");
    for &nodes in &[1000usize, 4000, 10000] {
        // Stagger the initial deadlines over one period, like the world does.
        let stagger = |i: usize| SimTime::from_millis((i * 997 / nodes + 1) as u64);
        group.bench_function(format!("wheel/{nodes}"), |b| {
            let mut wheel = TimerWheel::new();
            let mut batch = Vec::new();
            b.iter(|| {
                wheel.clear();
                for i in 0..nodes {
                    wheel.schedule(stagger(i), i);
                }
                let mut fired = 0usize;
                while fired < nodes * 10 {
                    let at = wheel.peek_time().expect("timers never drain");
                    wheel.pop_due_batch(at, &mut batch);
                    for (_, node) in batch.drain(..) {
                        fired += 1;
                        wheel.schedule(at + SimDuration::from_secs(1), node);
                    }
                }
                black_box(fired)
            });
        });
        group.bench_function(format!("heap/{nodes}"), |b| {
            let mut heap = EventQueue::new();
            b.iter(|| {
                heap.clear();
                for i in 0..nodes {
                    heap.schedule(stagger(i), i);
                }
                let mut fired = 0usize;
                while fired < nodes * 10 {
                    let (at, node) = heap.pop().expect("timers never drain");
                    fired += 1;
                    heap.schedule(at + SimDuration::from_secs(1), node);
                }
                black_box(fired)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_scaling, bench_queue_churn);
criterion_main!(benches);
