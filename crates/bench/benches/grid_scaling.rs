//! Scaling of reception resolution: spatial grid vs. brute-force scan.
//!
//! Builds media of 200/500/1000 nodes at a fixed neighbor density (~10 nodes
//! within radio range of any sender) and measures one round of
//! `begin_transmission` + `complete_transmission` for a burst of senders. The
//! grid path visits only the sender's 3×3 cell neighborhood, so its per-frame
//! cost tracks the (constant) neighbor count; the brute-force reference path
//! scans every node, so its cost grows linearly with the population. At 500+
//! nodes the grid must be at least ~2× faster (see `BENCH_BASELINE.json` for
//! captured numbers).

use criterion::{criterion_group, criterion_main, Criterion};
use mobility::Point;
use netsim::{RadioConfig, RadioMedium};
use simkit::{SimDuration, SimRng, SimTime};

const RANGE_M: f64 = 442.0;
const TARGET_NEIGHBORS: f64 = 10.0;
const BURST: usize = 6;

/// Scatters `nodes` uniformly over an area sized so that on average
/// `TARGET_NEIGHBORS` nodes fall within radio range of any point.
fn scatter(nodes: usize, rng: &mut SimRng) -> Vec<Point> {
    let area = nodes as f64 * std::f64::consts::PI * RANGE_M * RANGE_M / TARGET_NEIGHBORS;
    let side = area.sqrt();
    (0..nodes)
        .map(|_| Point::new(rng.uniform_f64(0.0, side), rng.uniform_f64(0.0, side)))
        .collect()
}

struct Round {
    medium: RadioMedium,
    rng: SimRng,
    now: SimTime,
    nodes: usize,
}

impl Round {
    fn new(nodes: usize) -> Self {
        let mut layout = SimRng::seed_from(nodes as u64);
        let positions = scatter(nodes, &mut layout);
        Round {
            medium: RadioMedium::with_positions(RadioConfig::ideal(RANGE_M), &positions),
            rng: SimRng::seed_from(7),
            now: SimTime::ZERO,
            nodes,
        }
    }

    /// One complete_transmission-heavy round: a burst of overlapping frames
    /// from spread-out senders, then resolution of each.
    fn run(&mut self, brute: bool) -> usize {
        let stride = (self.nodes / BURST).max(1);
        let mut pending = Vec::with_capacity(BURST);
        for b in 0..BURST {
            let sender = (b * stride) % self.nodes;
            let (tx, _) = self.medium.begin_transmission(sender, 400, self.now);
            pending.push(tx);
        }
        let mut outcomes = 0;
        for tx in pending {
            outcomes += if brute {
                self.medium
                    .complete_transmission_brute(tx, &mut self.rng)
                    .len()
            } else {
                self.medium.complete_transmission(tx, &mut self.rng).len()
            };
        }
        // Advance past the prune horizon so the transmission slab stays small.
        self.now += SimDuration::from_secs(30);
        outcomes
    }
}

fn bench_grid_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_scaling");
    for &nodes in &[200usize, 500, 1000] {
        let mut round = Round::new(nodes);
        group.bench_function(format!("grid/{nodes}"), |b| {
            b.iter(|| round.run(false));
        });
        let mut round = Round::new(nodes);
        group.bench_function(format!("brute/{nodes}"), |b| {
            b.iter(|| round.run(true));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_grid_scaling);
criterion_main!(benches);
