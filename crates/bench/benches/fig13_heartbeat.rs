//! Criterion benchmark: cost of regenerating Fig. 13 (city-section reliability vs. heartbeat upper bound) at smoke scale.
//!
//! The measured body is exactly the code path the `reproduce` binary runs for
//! this figure, shrunk to a single-seed, single-point sweep so the benchmark
//! doubles as a simulator-throughput regression test.

use bench::smoke;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig13_heartbeat");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("smoke_sweep", |b| {
        b.iter(|| manet_sim::experiments::city::fig13(&smoke::city()).expect("fig13 experiment"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
