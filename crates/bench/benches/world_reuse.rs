//! Per-seed world setup: fresh `World::new` vs. arena-recycled `World::reset`.
//!
//! Sweeping thousands of seeds re-runs one scenario with nothing but the seed
//! changing, so everything `World::new` allocates — node vector, spatial-grid
//! buckets, traffic counters, event queue, frame/publication records — plus
//! the per-seed `Scenario` clone is pure churn. This bench measures one short
//! seed run (setup-dominated: 500 nodes, 2 s of virtual time) both ways: the
//! `fresh` path mirrors the pre-arena runner (clone + `World::new` per seed),
//! the `arena` path is what the runner's workers do now
//! (`WorldArena::checkout` + `run_mut`). Arena reuse must win (see
//! `BENCH_BASELINE.json`); reports stay bit-identical (pinned by
//! `tests/integration_determinism.rs`).
//!
//! The flooding pair measures the original (PR 3) recycling of world-level
//! collections; the frugal pair measures *total* recycling (PR 4), where each
//! node's boxed protocol — its event table, neighborhood maps and metrics —
//! and mobility state are additionally reset in place instead of rebuilt,
//! which is where per-seed setup cost actually lives for the paper's
//! protocol.

use criterion::{criterion_group, criterion_main, Criterion};
use frugal::{FloodingPolicy, ProtocolConfig};
use manet_sim::{MobilityKind, ProtocolKind, Scenario, ScenarioBuilder, World, WorldArena};
use mobility::Area;
use netsim::RadioConfig;
use simkit::SimDuration;

/// A setup-dominated scenario: many nodes, one second of virtual time, no
/// publications and no heartbeat timers (flooding protocol), so per-seed cost
/// is almost entirely world construction.
fn short_scenario() -> Scenario {
    short_scenario_with(
        ProtocolKind::Flooding(FloodingPolicy::Simple),
        SimDuration::from_secs(1),
    )
}

fn short_scenario_with(protocol: ProtocolKind, duration: SimDuration) -> Scenario {
    ScenarioBuilder::new()
        .label("world-reuse")
        .protocol(protocol)
        .nodes(500)
        .subscriber_fraction(0.8)
        .mobility(MobilityKind::RandomWaypoint {
            area: Area::square(4000.0),
            speed_min: 5.0,
            speed_max: 15.0,
            pause: SimDuration::from_secs(1),
        })
        .radio(RadioConfig::ideal(150.0))
        .timing(SimDuration::ZERO, duration)
        .publications(vec![])
        .mobility_tick(SimDuration::from_millis(500))
        .build()
        .expect("static scenario is valid")
}

fn bench_world_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_reuse");
    let scenario = short_scenario();

    // Pre-arena runner behaviour: clone the scenario and build a world from
    // scratch for every seed.
    let mut seed = 0u64;
    group.bench_function("fresh/500", |b| {
        b.iter(|| {
            seed += 1;
            World::new(scenario.clone(), seed)
                .expect("valid scenario")
                .run()
                .nodes
                .len()
        });
    });

    // Arena path: the previous seed's allocations are recycled.
    let mut arena = WorldArena::new();
    let mut seed = 0u64;
    group.bench_function("arena/500", |b| {
        b.iter(|| {
            seed += 1;
            arena
                .checkout(&scenario, seed)
                .expect("valid scenario")
                .run_mut()
                .nodes
                .len()
        });
    });

    // Total-recycle pair: 500 frugal protocol instances (event tables,
    // neighborhood maps, adaptive-delay state) built per seed vs reset in
    // place by the arena. The virtual window is kept to 100 ms — shorter
    // than the subscription stagger, so almost nothing runs — to isolate
    // per-seed setup, which is what a wide parameter sweep pays per point.
    let frugal = short_scenario_with(
        ProtocolKind::Frugal(ProtocolConfig::paper_default()),
        SimDuration::from_millis(100),
    );
    let mut seed = 0u64;
    group.bench_function("fresh_frugal/500", |b| {
        b.iter(|| {
            seed += 1;
            World::new(frugal.clone(), seed)
                .expect("valid scenario")
                .run()
                .nodes
                .len()
        });
    });
    let mut arena = WorldArena::new();
    let mut seed = 0u64;
    group.bench_function("arena_frugal/500", |b| {
        b.iter(|| {
            seed += 1;
            arena
                .checkout(&frugal, seed)
                .expect("valid scenario")
                .run_mut()
                .nodes
                .len()
        });
    });

    group.finish();
}

criterion_group!(benches, bench_world_reuse);
criterion_main!(benches);
