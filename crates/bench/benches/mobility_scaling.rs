//! Scaling of the per-tick mobility advance: dirty-tick skip vs. naive scan.
//!
//! Builds mostly-paused random-waypoint populations of 250/1000/4000 nodes
//! (short legs, 30 s pauses, so ~80% of the nodes are idle at any tick) and
//! measures a full world run of a traffic-free scenario — the run cost is
//! dominated by the 240 mobility ticks. The dirty-tick path advances only
//! nodes whose movement state can change this tick and skips paused nodes
//! entirely; the naive reference path advances every node on every tick. At
//! 1000+ nodes the dirty-tick path must win clearly (see
//! `BENCH_BASELINE.json` for captured numbers); reports stay bit-identical
//! (pinned by `tests/mobility_equivalence.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use frugal::FloodingPolicy;
use manet_sim::{MobilityKind, ProtocolKind, Scenario, ScenarioBuilder, WorldArena};
use mobility::Area;
use netsim::RadioConfig;
use simkit::SimDuration;

/// A mobility-dominated scenario: no publications, simple flooding (one
/// quiet 1 Hz timer per node, no heartbeats), and a fine 50 ms mobility tick,
/// so the event loop is almost exclusively mobility advances (1200 ticks over
/// 60 s of virtual time, 20 ticks per timer event).
fn mostly_paused(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("mobility-scaling")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::RandomWaypoint {
            area: Area::square(250.0),
            speed_min: 20.0,
            speed_max: 30.0,
            pause: SimDuration::from_secs(30),
        })
        .radio(RadioConfig::ideal(100.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(60))
        .publications(vec![])
        .mobility_tick(SimDuration::from_millis(50))
        .build()
        .expect("static scenario is valid")
}

fn bench_mobility_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mobility_scaling");
    for &nodes in &[250usize, 1000, 4000] {
        let scenario = mostly_paused(nodes);
        // Both sides recycle world setup through an arena, so the measured
        // difference is the per-tick advance cost alone.
        let mut arena = WorldArena::new();
        let mut seed = 0u64;
        group.bench_function(format!("dirty/{nodes}"), |b| {
            b.iter(|| {
                seed += 1;
                let world = arena.checkout(&scenario, seed).expect("valid scenario");
                world.run_mut().nodes.len()
            });
        });
        let mut arena = WorldArena::new();
        let mut seed = 0u64;
        group.bench_function(format!("naive/{nodes}"), |b| {
            b.iter(|| {
                seed += 1;
                let world = arena.checkout(&scenario, seed).expect("valid scenario");
                world.set_naive_mobility(true);
                world.run_mut().nodes.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mobility_scaling);
criterion_main!(benches);
