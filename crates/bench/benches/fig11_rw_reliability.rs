//! Criterion benchmark: cost of regenerating Fig. 11 (random-waypoint reliability vs. speed and validity) at smoke scale.
//!
//! The measured body is exactly the code path the `reproduce` binary runs for
//! this figure, shrunk to a single-seed, single-point sweep so the benchmark
//! doubles as a simulator-throughput regression test.

use bench::smoke;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_rw_reliability");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("smoke_sweep", |b| {
        b.iter(|| manet_sim::experiments::fig11::run(&smoke::fig11()).expect("fig11 experiment"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
