//! Scaling of the sharded event loop: whole-world runs at 1/2/4/8 shards.
//!
//! Two regimes, both at 10 000 and 100 000 nodes with constant density
//! (100 m² per node, 50 m radio, traffic-free simple flooding so the
//! measured work is the event loop itself, not collision resolution):
//!
//! * `stationary/*` — timer-dominated: every same-timestamp batch is one
//!   protocol segment of quiet 1 Hz timer fires, fanned out to the shard
//!   workers and committed in FIFO order;
//! * `mobile/*` — mobility-dominated: every node moves continuously
//!   (pause 0) under a 500 ms tick, so each tick batch advances the whole
//!   population in parallel before the sequential grid/wake commit.
//!
//! `shards1` is the sequential reference path (`effective_shards() == 1`
//! skips the worker pool entirely); the other counts exercise the full
//! mailbox fan-out. Reports stay bit-identical across all counts (pinned
//! by `tests/shard_equivalence.rs`), so the only thing that may move here
//! is time. On a multi-core host the per-batch work (10⁴–10⁵ node
//! advances or timer fires) dwarfs the two mailbox round trips per
//! segment and higher shard counts should win; on a single-core host the
//! same numbers measure pure coordination overhead instead — the workers
//! time-slice one CPU, so `shards{2,4,8}` can only show how cheap the
//! yield-based hand-off is, never a speedup. `BENCH_BASELINE.json`
//! records which regime captured the committed figures.

use criterion::{criterion_group, criterion_main, Criterion};
use frugal::FloodingPolicy;
use manet_sim::{
    MobilityKind, ProtocolKind, Publication, PublisherChoice, Scenario, ScenarioBuilder, WorldArena,
};
use mobility::Area;
use netsim::RadioConfig;
use simkit::{SimDuration, SimTime};

/// Side of a square holding `nodes` at 100 m² per node, so density (and
/// with it per-node grid/neighbor cost) stays constant across sizes.
fn side_for(nodes: usize) -> f64 {
    (nodes as f64 * 100.0).sqrt()
}

/// Timer-dominated population: stationary nodes whose only events are the
/// quiet 1 Hz flooding timers, all coalesced into whole-population batches.
fn stationary(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("shard-scaling-stationary")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::Stationary {
            area: Area::square(side_for(nodes)),
        })
        .radio(RadioConfig::ideal(50.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(11))
        .publications(vec![])
        .build()
        .expect("static scenario is valid")
}

/// Mobility-dominated population: every node walks continuously (pause 0),
/// so each 500 ms tick advances the entire population in one batch.
fn mobile(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("shard-scaling-mobile")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::RandomWaypoint {
            area: Area::square(side_for(nodes)),
            speed_min: 5.0,
            speed_max: 15.0,
            pause: SimDuration::ZERO,
        })
        .radio(RadioConfig::ideal(50.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(11))
        .publications(vec![])
        .mobility_tick(SimDuration::from_millis(500))
        .build()
        .expect("static scenario is valid")
}

/// Traffic-sparse population: no publication ever leases a frame, so the
/// whole run is the silent stretch the adaptive lookahead fuses. The
/// initial subscription stagger spreads every node's quiet 1 Hz flood
/// timer across distinct timestamps, so the fixed window pays one full
/// fork/join round trip per *node* per second — the degenerate tiny-batch
/// regime — while the widened window drains those runs in fused blocks of
/// up to 256 batches. Long pauses under the default 500 ms tick keep the
/// mobility segments light, so the pair (`sparse_adaptive` vs
/// `sparse_fixed`) isolates exactly the round-trip amortisation.
fn sparse(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("shard-scaling-sparse")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::RandomWaypoint {
            area: Area::square(side_for(nodes)),
            speed_min: 15.0,
            speed_max: 30.0,
            pause: SimDuration::from_secs(20),
        })
        .radio(RadioConfig::ideal(50.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(6))
        .publications(vec![])
        .build()
        .expect("static scenario is valid")
}

/// Clustered-density chain: nodes 5 m apart on a line with a 100 m radio,
/// flooded end to end from node 0. The wavefront concentrates reception
/// work in a narrow, moving stretch of the (contiguous) id space — the
/// worst case for static boundaries and the target of both the EWMA
/// cost repartitioning and the opt-in classify work stealing
/// (`clustered` vs `clustered_steal`).
fn clustered(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("shard-scaling-clustered")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::StationaryLine {
            length: nodes as f64 * 5.0,
        })
        .radio(RadioConfig::ideal(100.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(11))
        .publications(vec![Publication {
            publisher: PublisherChoice::Node(0),
            topic: ".news.local".parse().unwrap(),
            at: SimTime::from_secs(2),
            validity: SimDuration::from_secs(8),
            payload_bytes: 400,
        }])
        .build()
        .expect("static scenario is valid")
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    for (label, build) in [
        ("stationary", stationary as fn(usize) -> Scenario),
        ("mobile", mobile as fn(usize) -> Scenario),
    ] {
        for &nodes in &[10_000usize, 100_000] {
            let scenario = build(nodes);
            for &shards in &[1usize, 2, 4, 8] {
                // Every shard count recycles world setup through its own
                // arena, so the measured difference is the event loop alone.
                let mut arena = WorldArena::new();
                let mut seed = 0u64;
                group.bench_function(format!("{label}/{nodes}/shards{shards}"), |b| {
                    b.iter(|| {
                        seed += 1;
                        let world = arena.checkout(&scenario, seed).expect("valid scenario");
                        world.set_shards(shards);
                        world.run_mut().nodes.len()
                    });
                });
            }
        }
    }
    // Adaptive-vs-fixed pairs on the traffic-sparse population: the
    // `sparse_adaptive / sparse_fixed` ratio per (nodes, shards) point is the
    // measured value of the widened windows (captured as `sparse_speedup` in
    // BENCH_BASELINE.json).
    for (label, fixed) in [("sparse_adaptive", false), ("sparse_fixed", true)] {
        for &nodes in &[10_000usize, 100_000] {
            let scenario = sparse(nodes);
            for &shards in &[2usize, 4] {
                let mut arena = WorldArena::new();
                let mut seed = 0u64;
                group.bench_function(format!("{label}/{nodes}/shards{shards}"), |b| {
                    b.iter(|| {
                        seed += 1;
                        let world = arena.checkout(&scenario, seed).expect("valid scenario");
                        world.set_shards(shards);
                        world.set_fixed_lookahead(fixed);
                        world.run_mut().nodes.len()
                    });
                });
            }
        }
    }
    // Pre-split vs work-stealing classification on the clustered chain. Both
    // run under the same adaptive engine (the flood keeps terminating the
    // windows); the variant toggles only how the reception fan-out is split.
    for (label, steal) in [("clustered", false), ("clustered_steal", true)] {
        for &nodes in &[2_000usize, 10_000] {
            let scenario = clustered(nodes);
            for &shards in &[2usize, 4] {
                let mut arena = WorldArena::new();
                let mut seed = 0u64;
                group.bench_function(format!("{label}/{nodes}/shards{shards}"), |b| {
                    b.iter(|| {
                        seed += 1;
                        let world = arena.checkout(&scenario, seed).expect("valid scenario");
                        world.set_shards(shards);
                        world.set_classify_work_stealing(steal);
                        world.run_mut().nodes.len()
                    });
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
