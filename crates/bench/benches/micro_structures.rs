//! Micro-benchmarks of the protocol's core data structures: the event table
//! and its Eq. 1 garbage collection, topic matching over deep hierarchies, the
//! neighborhood table, and the full message-handling hot path of one protocol
//! instance under a burst of heartbeats.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use frugal::{
    ActionBuf, DisseminationProtocol, EventTable, FrugalProtocol, Message, NeighborhoodTable,
    ProtocolConfig,
};
use pubsub::{Event, EventId, ProcessId, SubscriptionSet, Topic};
use simkit::{SimDuration, SimTime};
use std::time::Duration;

fn topic(depth: usize) -> Topic {
    let mut t = Topic::root();
    for i in 0..depth {
        t = t.child(&format!("level{i}"));
    }
    t
}

fn event(seq: u64, topic: Topic, validity_secs: u64) -> Event {
    Event::new(
        EventId::new(ProcessId(seq % 17), seq),
        topic,
        SimTime::ZERO,
        SimDuration::from_secs(validity_secs),
        400,
    )
}

fn bench_event_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_table");
    group.warm_up_time(Duration::from_secs(1));

    group.bench_function("insert_with_eq1_eviction_capacity_256", |b| {
        b.iter(|| {
            let mut table = EventTable::new(256);
            for seq in 0..1024u64 {
                let _ = table.insert(
                    event(seq, topic(3), 60 + seq % 300),
                    SimTime::from_secs(seq % 50),
                );
                if seq % 3 == 0 {
                    table.increment_forward_count(&EventId::new(ProcessId(seq % 17), seq));
                }
            }
            black_box(table.len())
        })
    });

    group.bench_function("ids_of_interest_1000_events", |b| {
        let mut table = EventTable::new(2048);
        for seq in 0..1000u64 {
            let depth = 1 + (seq % 5) as usize;
            let _ = table.insert(event(seq, topic(depth), 600), SimTime::ZERO);
        }
        let subs = SubscriptionSet::single(topic(2));
        b.iter(|| black_box(table.ids_of_interest(&subs, SimTime::from_secs(1)).len()))
    });
    group.finish();
}

fn bench_topic_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("topic_matching");
    group.warm_up_time(Duration::from_secs(1));
    let subs: SubscriptionSet = (1..=8).map(topic).collect();
    let deep = topic(12);
    group.bench_function("matches_deep_topic_against_8_subscriptions", |b| {
        b.iter(|| black_box(subs.matches(&deep)))
    });
    let other = Topic::root().child("elsewhere").child("entirely");
    group.bench_function("rejects_unrelated_topic", |b| {
        b.iter(|| black_box(subs.matches(&other)))
    });
    group.finish();
}

fn bench_neighborhood_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("neighborhood_table");
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("upsert_and_collect_200_neighbors", |b| {
        let subs = SubscriptionSet::single(topic(2));
        b.iter(|| {
            let mut table = NeighborhoodTable::new();
            for i in 0..200u64 {
                table.upsert(
                    ProcessId(i),
                    subs.clone(),
                    Some(i as f64 % 40.0),
                    SimTime::from_secs(i % 30),
                );
                table.record_known_event(
                    ProcessId(i),
                    EventId::new(ProcessId(0), i),
                    SimTime::from_secs(i % 30),
                );
            }
            black_box(
                table
                    .collect_stale(SimTime::from_secs(30), SimDuration::from_secs(10))
                    .len(),
            )
        })
    });
    group.finish();
}

fn bench_protocol_hot_path(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_hot_path");
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("handle_100_heartbeats_and_id_lists", |b| {
        b.iter(|| {
            let mut protocol = FrugalProtocol::new(ProcessId(0), ProtocolConfig::paper_default());
            let mut out = ActionBuf::new();
            protocol.subscribe(topic(2), SimTime::ZERO, &mut out);
            out.clear();
            for seq in 0..20u64 {
                protocol.publish(
                    topic(3),
                    SimDuration::from_secs(300),
                    400,
                    SimTime::ZERO,
                    &mut out,
                );
                out.clear();
                let _ = seq;
            }
            let mut actions = 0usize;
            for i in 1..=100u64 {
                let now = SimTime::from_millis(i * 10);
                let hb = Message::Heartbeat {
                    from: ProcessId(i),
                    subscriptions: SubscriptionSet::single(topic(2)),
                    speed: Some(10.0),
                };
                protocol.handle_message(&hb, now, &mut out);
                actions += out.len();
                out.clear();
                let ids = Message::EventIds {
                    from: ProcessId(i),
                    ids: vec![],
                };
                protocol.handle_message(&ids, now, &mut out);
                actions += out.len();
                out.clear();
            }
            black_box(actions)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_table,
    bench_topic_matching,
    bench_neighborhood_table,
    bench_protocol_hot_path
);
criterion_main!(benches);
