//! Scaling of the per-tick wake resolution: event-driven wake queue vs. the
//! scan-every-node dirty-tick reference.
//!
//! Builds mostly-paused random-waypoint populations of 1000/4000/10000 nodes
//! (legs of a few seconds, pauses longer than the run, so after its first
//! waypoint every node sleeps for the rest of the 60 s) and measures a full
//! world run of a traffic-free scenario over 6000 fine-grained 10 ms ticks —
//! the position-accuracy regime where per-tick cost is the floor. The scan
//! reference (PR 3, `World::set_scan_mobility`) pays one wake-time compare
//! per node per tick — the last O(nodes)-per-tick loop in the simulator; the
//! event-driven path (default) advances only the moving/waking nodes (dense
//! active list + indexed wake queue), so a tick over a sleeping population
//! costs O(1). The event path must win and the gap must widen with the
//! population (see `BENCH_BASELINE.json` for captured numbers); reports stay
//! bit-identical (pinned by `tests/mobility_equivalence.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use frugal::FloodingPolicy;
use manet_sim::{MobilityKind, ProtocolKind, Scenario, ScenarioBuilder, WorldArena};
use mobility::Area;
use netsim::RadioConfig;
use simkit::SimDuration;

/// A wake-dominated scenario: no publications, simple flooding (one quiet
/// 1 Hz timer per node, no heartbeats), a fine 10 ms mobility tick, short
/// first legs (100 m area at 20–30 m/s) and pauses far longer than the run,
/// so almost every tick finds almost every node asleep — the regime where
/// wake resolution itself is the floor.
fn mostly_sleeping(nodes: usize) -> Scenario {
    ScenarioBuilder::new()
        .label("wake-scaling")
        .protocol(ProtocolKind::Flooding(FloodingPolicy::Simple))
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::RandomWaypoint {
            area: Area::square(100.0),
            speed_min: 20.0,
            speed_max: 30.0,
            pause: SimDuration::from_secs(300),
        })
        .radio(RadioConfig::ideal(100.0))
        .timing(SimDuration::from_secs(1), SimDuration::from_secs(60))
        .publications(vec![])
        .mobility_tick(SimDuration::from_millis(10))
        .build()
        .expect("static scenario is valid")
}

fn bench_wake_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("wake_scaling");
    for &nodes in &[1000usize, 4000, 10000] {
        let scenario = mostly_sleeping(nodes);
        // Both sides recycle world setup through an arena, so the measured
        // difference is the per-tick wake resolution cost alone.
        let mut arena = WorldArena::new();
        let mut seed = 0u64;
        group.bench_function(format!("event/{nodes}"), |b| {
            b.iter(|| {
                seed += 1;
                let world = arena.checkout(&scenario, seed).expect("valid scenario");
                world.run_mut().nodes.len()
            });
        });
        let mut arena = WorldArena::new();
        let mut seed = 0u64;
        group.bench_function(format!("scan/{nodes}"), |b| {
            b.iter(|| {
                seed += 1;
                let world = arena.checkout(&scenario, seed).expect("valid scenario");
                world.set_scan_mobility(true);
                world.run_mut().nodes.len()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_wake_scaling);
criterion_main!(benches);
