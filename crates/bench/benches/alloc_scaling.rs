//! Allocation scaling: proves the steady-state hot path is allocation-free
//! at population scale and measures the per-node memory footprint.
//!
//! Two figures per `(protocol, population)` cell, printed as `alloc` report
//! lines that `scripts/capture_bench_baseline.py` folds into
//! `BENCH_BASELINE.json` alongside the timing baselines:
//!
//! ```text
//! alloc alloc_scaling/steady_allocs/frugal/1000: 0
//! alloc alloc_scaling/bytes_per_node/frugal/1000: 4312
//! ```
//!
//! * `steady_allocs` — heap operations (alloc, alloc_zeroed, realloc) during
//!   a 40-simulated-second window after warm-up, over a constant-density
//!   stationary population. The scenario mirrors
//!   `tests/alloc_free_steady_state.rs` at 12 nodes; this bench re-checks the
//!   zero-allocation contract where it matters — at scale, where one stray
//!   allocation per event would mean tens of thousands per window. The bench
//!   exits non-zero if the count is not exactly zero, so running it is a
//!   gate, not just a report.
//! * `bytes_per_node` — net live heap bytes added by building *and warming*
//!   one world, divided by the population: the steady working set per node
//!   including every scratch buffer, pool and slab at its high-water mark
//!   (an honest figure; sizing structs alone would flatter the number by
//!   hiding the shared arenas).
//!
//! Not a criterion bench: the metrics are counts, not durations, so this is
//! a plain `harness = false` main over a metering global allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicI64, Ordering};

use frugal::{FloodingPolicy, ProtocolConfig};
use manet_sim::{
    MobilityKind, ProtocolKind, Publication, PublisherChoice, Scenario, ScenarioBuilder, World,
};
use mobility::Area;
use netsim::RadioConfig;
use simkit::{SimDuration, SimTime};

/// Counts heap operations inside a window (thread-local, like the
/// steady-state test) and tracks net live bytes (process-wide) for the
/// bytes/node figure.
struct MeteredAlloc;

static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);

thread_local! {
    static WINDOW: Cell<Option<u64>> = const { Cell::new(None) };
}

fn charge() {
    WINDOW.with(|window| {
        if let Some(count) = window.get() {
            window.set(Some(count + 1));
        }
    });
}

unsafe impl GlobalAlloc for MeteredAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        charge();
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        charge();
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            LIVE_BYTES.fetch_add(layout.size() as i64, Ordering::Relaxed);
        }
        ptr
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        charge();
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            LIVE_BYTES.fetch_add(new_size as i64 - layout.size() as i64, Ordering::Relaxed);
        }
        new_ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as i64, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: MeteredAlloc = MeteredAlloc;

fn count_allocations(f: impl FnOnce()) -> u64 {
    WINDOW.with(|window| window.set(Some(0)));
    f();
    WINDOW.with(|window| {
        let count = window.get().expect("measurement window still open");
        window.set(None);
        count
    })
}

/// ~8 expected neighbors per node under a 150 m ideal radio.
const DENSITY_PER_M2: f64 = 1.2e-4;

/// A constant-density stationary population, all subscribed, with one
/// long-validity event published during warm-up so id exchange and event
/// retransmission stay active inside the measurement window.
fn steady_scenario(protocol: ProtocolKind, nodes: usize) -> Scenario {
    let side = (nodes as f64 / DENSITY_PER_M2).sqrt();
    ScenarioBuilder::new()
        .label("alloc-scaling")
        .protocol(protocol)
        .nodes(nodes)
        .subscriber_fraction(1.0)
        .mobility(MobilityKind::Stationary {
            area: Area::square(side),
        })
        .radio(RadioConfig::ideal(150.0))
        .timing(SimDuration::from_secs(2), SimDuration::from_secs(90))
        .publications(vec![Publication {
            publisher: PublisherChoice::Node(0),
            topic: ".news.local".parse().unwrap(),
            at: SimTime::from_secs(3),
            validity: SimDuration::from_secs(85),
            payload_bytes: 400,
        }])
        .mobility_tick(SimDuration::from_millis(500))
        .build()
        .expect("static scenario is valid")
}

/// One measured cell: returns `(steady_allocs, bytes_per_node, frames)`.
fn measure(protocol: ProtocolKind, nodes: usize) -> (u64, i64, u64) {
    let scenario = steady_scenario(protocol, nodes);
    let live_before = LIVE_BYTES.load(Ordering::Relaxed);
    let mut world = World::new(scenario, 1).expect("valid scenario");
    // Warm-up: grow every scratch buffer, pool and slab to its peak.
    world.run_until(SimTime::from_secs(40));
    let bytes_per_node = (LIVE_BYTES.load(Ordering::Relaxed) - live_before) / nodes as i64;
    let allocations = count_allocations(|| world.run_until(SimTime::from_secs(80)));
    let report = world.run_mut();
    let frames: u64 = report.nodes.iter().map(|n| n.traffic.frames_sent).sum();
    (allocations, bytes_per_node, frames)
}

fn main() {
    let cells = [
        (
            "frugal",
            ProtocolKind::Frugal(ProtocolConfig::paper_default()),
        ),
        ("flooding", ProtocolKind::Flooding(FloodingPolicy::Simple)),
    ];
    let mut stray = false;
    for (name, protocol) in cells {
        for nodes in [250usize, 1000] {
            let (allocations, bytes_per_node, frames) = measure(protocol.clone(), nodes);
            println!("alloc alloc_scaling/steady_allocs/{name}/{nodes}: {allocations}");
            println!("alloc alloc_scaling/bytes_per_node/{name}/{nodes}: {bytes_per_node}");
            assert!(
                frames > 1000,
                "{name}/{nodes}: the mesh must stay busy, sent {frames} frames"
            );
            if allocations != 0 {
                eprintln!(
                    "alloc_scaling: {name}/{nodes} allocated {allocations} times in the \
                     steady-state window (expected 0)"
                );
                stray = true;
            }
        }
    }
    if stray {
        std::process::exit(1);
    }
}
