//! Criterion benchmark: cost of regenerating Fig. 20 (parasite events received per process vs. the flooding baselines) at smoke scale.
//!
//! The measured body is exactly the code path the `reproduce` binary runs for
//! this figure, shrunk to a single-seed, single-point sweep so the benchmark
//! doubles as a simulator-throughput regression test.

use bench::smoke;
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig20_parasites");
    group.sample_size(10);
    group.warm_up_time(Duration::from_secs(1));
    group.bench_function("smoke_sweep", |b| {
        b.iter(|| {
            manet_sim::experiments::frugality::run(&smoke::frugality())
                .expect("fig20 experiment")
                .parasites
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
