//! City-section walk-through: how the heartbeat period and the validity period
//! drive reliability when 15 cars drive around a campus.
//!
//! This reproduces (at reduced seed count) the experiments behind the paper's
//! Figures 13 and 16 and prints the resulting tables. Pass `--paper` to use the
//! full 30-seed, 15-publisher methodology (slow).
//!
//! Run with: `cargo run --release --example campus_city [-- --paper]`

use manet_sim::experiments::city::{fig13, fig16, CityConfig};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let config = if paper_scale {
        println!(
            "Running the full paper methodology (30 seeds x 15 publishers) — this takes a while.\n"
        );
        CityConfig::paper()
    } else {
        println!(
            "Running the reduced smoke-test configuration (pass --paper for the full sweep).\n"
        );
        CityConfig::quick()
    };

    println!(
        "Street network: 1200 m x 900 m campus grid, {} cars at 8-13 m/s, radio range 44 m.\n",
        config.node_count
    );

    match fig13(&config) {
        Ok(table) => {
            println!("{}", table.to_markdown());
            println!(
                "The paper reports 76.9% / 75.1% / 65.5% / 69.9% / 54.0% for bounds of 1-5 s:\n\
                 reliability degrades as heartbeats become sparser, because neighbors are\n\
                 detected too late to hand events over before the cars drive apart.\n"
            );
        }
        Err(err) => eprintln!("fig13 failed: {err}"),
    }

    match fig16(&config) {
        Ok(table) => {
            println!("{}", table.to_markdown());
            println!(
                "The paper reports 11% -> 77% as the validity grows from 25 s to 150 s: in the\n\
                 city model the processes meet at a few popular spots, so an event needs to stay\n\
                 valid long enough to survive until those encounters happen."
            );
        }
        Err(err) => eprintln!("fig16 failed: {err}"),
    }
}
