//! Frugality face-off: the frugal protocol against the three flooding variants.
//!
//! Runs the comparison behind the paper's Figures 17–20 at smoke-test scale and
//! prints the four tables (bandwidth, events sent, duplicates, parasites) plus
//! the headline ratios. Pass `--paper` for the full 150-node, 30-seed sweep.
//!
//! Run with: `cargo run --release --example frugality_faceoff [-- --paper]`

use manet_sim::experiments::frugality::{run, FrugalityConfig};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let config = if paper_scale {
        println!("Running the full paper sweep (150 nodes, 30 seeds) — this takes a while.\n");
        FrugalityConfig::paper()
    } else {
        println!("Running the reduced smoke-test sweep (pass --paper for the full one).\n");
        FrugalityConfig::quick()
    };

    let tables = match run(&config) {
        Ok(tables) => tables,
        Err(err) => {
            eprintln!("frugality comparison failed: {err}");
            return;
        }
    };

    println!("{}", tables.bandwidth_kb.to_markdown());
    println!("{}", tables.events_sent.to_markdown());
    println!("{}", tables.duplicates.to_markdown());
    println!("{}", tables.parasites.to_markdown());

    // Headline ratios on the densest row of the sweep.
    if let Some((label, _)) = tables.events_sent.rows().last().cloned() {
        let frugal_sent = tables.events_sent.value(&label, "frugal").unwrap_or(0.0);
        let flood_sent = tables
            .events_sent
            .value(&label, "simple-flooding")
            .unwrap_or(0.0);
        let frugal_dup = tables.duplicates.value(&label, "frugal").unwrap_or(0.0);
        let flood_dup = tables
            .duplicates
            .value(&label, "interests-aware-flooding")
            .unwrap_or(0.0);
        let frugal_bw = tables.bandwidth_kb.value(&label, "frugal").unwrap_or(0.0);
        let flood_bw = tables
            .bandwidth_kb
            .value(&label, "simple-flooding")
            .unwrap_or(0.0);
        println!("Headline ratios on the \"{label}\" configuration:");
        println!(
            "  events sent:  flooding / frugal = {:.0}x   (paper: 50-100x)",
            flood_sent / frugal_sent.max(1e-9)
        );
        println!(
            "  duplicates:   best flooding / frugal = {:.0}x (paper: 50-80x vs interests-aware)",
            flood_dup / frugal_dup.max(1.0)
        );
        println!(
            "  bandwidth:    simple flooding / frugal = {:.1}x (paper: 3x-4.5x)",
            flood_bw / frugal_bw.max(1e-9)
        );
    }
}
