//! Frugality face-off: the frugal protocol against the three flooding variants.
//!
//! Runs the comparison behind the paper's Figures 17–20 at smoke-test scale and
//! prints the four tables (bandwidth, events sent, duplicates, parasites) plus
//! the headline ratios. Pass `--paper` for the full 150-node, 30-seed sweep.
//!
//! Run with: `cargo run --release --example frugality_faceoff [-- --paper]`

use manet_sim::experiments::frugality::{run, FrugalityConfig};

fn main() {
    let paper_scale = std::env::args().any(|a| a == "--paper");
    let config = if paper_scale {
        println!("Running the full paper sweep (150 nodes, 30 seeds) — this takes a while.\n");
        FrugalityConfig::paper()
    } else {
        println!("Running the reduced smoke-test sweep (pass --paper for the full one).\n");
        FrugalityConfig::quick()
    };

    let tables = match run(&config) {
        Ok(tables) => tables,
        Err(err) => {
            eprintln!("frugality comparison failed: {err}");
            return;
        }
    };

    println!("{}", tables.bandwidth_kb.to_markdown());
    println!("{}", tables.events_sent.to_markdown());
    println!("{}", tables.duplicates.to_markdown());
    println!("{}", tables.parasites.to_markdown());
    println!(
        "(Fig. 20 note: at 100% interest every process subscribes to the measured\n\
         topic, so parasite events are structurally impossible and those rows are\n\
         exactly zero — they are not a rounding artifact.)\n"
    );

    // Headline ratios. The paper's frugality claims (50-100x fewer events
    // sent, 50-90x fewer parasites) are about sparse interest, where flooding
    // wastes the most — so quote them on the lowest-interest, most-events row.
    // The bandwidth claim (3x-4.5x) covers the whole sweep; quote it on the
    // densest row, where it is at its most conservative.
    let sparse = headline_row(&tables.events_sent, RowChoice::SparsestInterest);
    let dense = headline_row(&tables.events_sent, RowChoice::DensestInterest);
    if let (Some(sparse), Some(dense)) = (sparse, dense) {
        let frugal_sent = tables.events_sent.value(&sparse, "frugal").unwrap_or(0.0);
        let flood_sent = tables
            .events_sent
            .value(&sparse, "simple-flooding")
            .unwrap_or(0.0);
        let frugal_dup = tables.duplicates.value(&sparse, "frugal").unwrap_or(0.0);
        let flood_dup = tables
            .duplicates
            .value(&sparse, "interests-aware-flooding")
            .unwrap_or(0.0);
        let frugal_par = tables.parasites.value(&sparse, "frugal").unwrap_or(0.0);
        let flood_par = tables
            .parasites
            .value(&sparse, "simple-flooding")
            .unwrap_or(0.0);
        let frugal_bw = tables.bandwidth_kb.value(&dense, "frugal").unwrap_or(0.0);
        let flood_bw = tables
            .bandwidth_kb
            .value(&dense, "simple-flooding")
            .unwrap_or(0.0);
        println!("Headline ratios (\"{sparse}\" for frugality, \"{dense}\" for bandwidth):");
        println!(
            "  events sent:  flooding / frugal = {:.0}x   (paper: 50-100x)",
            flood_sent / frugal_sent.max(1e-9)
        );
        println!(
            "  duplicates:   best flooding / frugal = {:.0}x (paper: 50-80x vs interests-aware)",
            flood_dup / frugal_dup.max(1.0)
        );
        println!(
            "  parasites:    flooding / frugal = {:.0}x   (paper: 50-90x)",
            flood_par / frugal_par.max(1.0)
        );
        println!(
            "  bandwidth:    simple flooding / frugal = {:.1}x (paper: 3x-4.5x)",
            flood_bw / frugal_bw.max(1e-9)
        );
    }
}

enum RowChoice {
    /// Lowest subscriber fraction, then most events: where flooding wastes most.
    SparsestInterest,
    /// Highest subscriber fraction, then most events: the most loaded network.
    DensestInterest,
}

/// Picks the headline row among labels of the form `"{events} events / {pct}%"`.
/// Falls back to the last row if no label parses, so the headline block is
/// never silently dropped when the label format drifts.
fn headline_row(table: &manet_sim::DataTable, choice: RowChoice) -> Option<String> {
    table
        .rows()
        .iter()
        .filter_map(|(label, _)| {
            let (events, rest) = label.split_once(" events / ")?;
            let events: u64 = events.trim().parse().ok()?;
            let pct: u64 = rest.trim().strip_suffix('%')?.parse().ok()?;
            Some((label.clone(), events, pct))
        })
        .max_by_key(|&(_, events, pct)| match choice {
            RowChoice::SparsestInterest => (u64::MAX - pct, events),
            RowChoice::DensestInterest => (pct, events),
        })
        .map(|(label, _, _)| label)
        .or_else(|| table.rows().last().map(|(label, _)| label.clone()))
}
