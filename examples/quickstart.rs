//! Quickstart: disseminate one event through a small mobile network.
//!
//! Builds a 20-node random-waypoint scenario, runs the frugal protocol for one
//! simulated minute and prints what happened: how many subscribers received the
//! event, how much traffic every process paid for it, and how that compares to
//! naively flooding the same network.
//!
//! Run with: `cargo run --release --example quickstart`

use frugal::{FloodingPolicy, ProtocolConfig};
use manet_sim::{MobilityKind, ProtocolKind, Publication, PublisherChoice, ScenarioBuilder, World};
use mobility::Area;
use netsim::RadioConfig;
use simkit::{SimDuration, SimTime};

fn build_scenario(protocol: ProtocolKind) -> manet_sim::Scenario {
    ScenarioBuilder::new()
        .label("quickstart")
        .protocol(protocol)
        .nodes(20)
        .subscriber_fraction(0.8)
        .mobility(MobilityKind::RandomWaypoint {
            area: Area::square(800.0),
            speed_min: 5.0,
            speed_max: 15.0,
            pause: SimDuration::from_secs(1),
        })
        .radio(RadioConfig::paper_random_waypoint())
        .timing(SimDuration::from_secs(5), SimDuration::from_secs(65))
        .publications(vec![Publication {
            publisher: PublisherChoice::RandomSubscriber,
            topic: ".news.local".parse().expect("valid topic"),
            at: SimTime::from_secs(6),
            validity: SimDuration::from_secs(59),
            payload_bytes: 400,
        }])
        .build()
        .expect("quickstart scenario is statically valid")
}

fn main() {
    println!("=== Frugal event dissemination — quickstart ===\n");
    println!("20 nodes roam an 800 m x 800 m area at 5-15 m/s; 16 of them subscribe");
    println!("to .news and one of them publishes a 400-byte event valid for 59 s.\n");

    let frugal_report = World::new(
        build_scenario(ProtocolKind::Frugal(ProtocolConfig::paper_default())),
        42,
    )
    .expect("valid scenario")
    .run();

    let flooding_report = World::new(
        build_scenario(ProtocolKind::Flooding(FloodingPolicy::Simple)),
        42,
    )
    .expect("valid scenario")
    .run();

    for report in [&frugal_report, &flooding_report] {
        let outcome = &report.events[0];
        println!("--- {} ---", report.protocol);
        println!(
            "  reliability:            {:>6.1}% ({}/{} subscribers reached)",
            report.reliability() * 100.0,
            outcome.delivered,
            outcome.subscribers
        );
        println!(
            "  events sent / process:  {:>8.2}",
            report.events_sent_per_process()
        );
        println!(
            "  duplicates / process:   {:>8.2}",
            report.duplicates_per_process()
        );
        println!(
            "  parasites / process:    {:>8.2}",
            report.parasites_per_process()
        );
        println!(
            "  bandwidth / process:    {:>8.2} kB",
            report.bandwidth_kb_per_process()
        );
        println!();
    }

    let saving = flooding_report.bandwidth_kb_per_process()
        / frugal_report.bandwidth_kb_per_process().max(1e-9);
    println!(
        "Simple flooding pays {saving:.1}x the bandwidth of the frugal protocol for the same event."
    );
}
