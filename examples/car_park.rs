//! The paper's motivating application: free-car-park announcements.
//!
//! "The cars leaving the car parks act as publishers and propagate the
//! information of free parking spots. When receiving such information, other
//! cars, acting as subscribers, are able to locate the free place that is
//! closest to their destination." (footnote 1 of the paper)
//!
//! This example drives the protocol directly — no simulator scenario layer —
//! to show how an application embeds `FrugalProtocol`: cars move on the campus
//! street network, exchange heartbeats when they meet, and parking-spot events
//! (published under `.parking.<district>`) hop from car to car until their
//! validity (how long the spot is likely to stay free) expires.
//!
//! Run with: `cargo run --release --example car_park`

use frugal::{
    Action, DisseminationProtocol, FrugalProtocol, ProtocolConfig, TimerKind, VecActions,
};
use mobility::{CitySection, CitySectionConfig, MobilityModel, Point};
use pubsub::{ProcessId, Topic};
use simkit::{EventQueue, SimDuration, SimRng, SimTime};
use std::collections::HashMap;

/// One car: a protocol instance plus its position on the street network.
struct Car {
    name: &'static str,
    protocol: FrugalProtocol,
    mobility: CitySection,
    rng: SimRng,
}

/// Simulation events: protocol timers, mobility ticks and scripted publications.
enum Happening {
    Timer {
        car: usize,
        kind: TimerKind,
    },
    MobilityTick,
    LeaveParking {
        car: usize,
        district: &'static str,
        free_for: SimDuration,
    },
}

/// Radio range of the cars' Wi-Fi in the city (the paper's 44 m).
const RADIO_RANGE_M: f64 = 44.0;
const MOBILITY_TICK: SimDuration = SimDuration::from_millis(500);

fn main() {
    let district_topics: Vec<Topic> = ["north", "center", "south"]
        .iter()
        .map(|d| format!(".parking.{d}").parse().expect("valid topic"))
        .collect();

    // Six cars drive around the campus. Each subscribes to the districts close
    // to its destination; two of them will leave a parking spot along the way.
    let car_names = ["alice", "bob", "carol", "dave", "erin", "frank"];
    let subscriptions: [&[usize]; 6] = [&[0, 1], &[1], &[2], &[0], &[1, 2], &[0, 1]];

    let master = SimRng::seed_from(2005);
    let mut cars: Vec<Car> = car_names
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let mut rng = master.derive(i as u64);
            Car {
                name,
                protocol: FrugalProtocol::new(ProcessId(i as u64), ProtocolConfig::paper_default()),
                mobility: CitySection::new(CitySectionConfig::paper_campus(), &mut rng),
                rng,
            }
        })
        .collect();

    let mut queue: EventQueue<Happening> = EventQueue::new();
    let mut timers: HashMap<(usize, TimerKind), simkit::EventHandle> = HashMap::new();
    let mut now = SimTime::ZERO;

    // Subscriptions at start-up (staggered a little, like real ignitions).
    let mut pending: Vec<(usize, Vec<Action>)> = Vec::new();
    for (i, car) in cars.iter_mut().enumerate() {
        let mut actions = Vec::new();
        for &district in subscriptions[i] {
            actions.extend(
                car.protocol
                    .subscribe_vec(district_topics[district].clone(), now),
            );
        }
        pending.push((i, actions));
    }

    // Scripted publications: bob frees a spot in the center after 20 s,
    // erin frees one in the south after 60 s.
    queue.schedule(
        SimTime::from_secs(20),
        Happening::LeaveParking {
            car: 1,
            district: "center",
            free_for: SimDuration::from_secs(120),
        },
    );
    queue.schedule(
        SimTime::from_secs(60),
        Happening::LeaveParking {
            car: 4,
            district: "south",
            free_for: SimDuration::from_secs(90),
        },
    );
    queue.schedule(SimTime::ZERO + MOBILITY_TICK, Happening::MobilityTick);

    let end = SimTime::from_secs(180);
    println!("=== Car park announcements on the campus street network ===\n");

    // Helper: deliver a broadcast to every car within radio range of the sender.
    fn positions(cars: &[Car]) -> Vec<Point> {
        cars.iter().map(|c| c.mobility.position()).collect()
    }

    // Apply protocol actions: route broadcasts to in-range cars, manage timers.
    fn apply(
        sender: usize,
        actions: Vec<Action>,
        cars: &mut Vec<Car>,
        queue: &mut EventQueue<Happening>,
        timers: &mut HashMap<(usize, TimerKind), simkit::EventHandle>,
        now: SimTime,
    ) {
        for action in actions {
            match action {
                Action::Broadcast(message) => {
                    let pos = positions(cars);
                    let reachable: Vec<usize> = (0..cars.len())
                        .filter(|&r| r != sender && pos[sender].distance(pos[r]) <= RADIO_RANGE_M)
                        .collect();
                    for receiver in reachable {
                        let produced = cars[receiver].protocol.handle_message_vec(&message, now);
                        apply(receiver, produced, cars, queue, timers, now);
                    }
                }
                Action::Deliver(event) => {
                    println!(
                        "[{:>5.1}s] {} learns about a free spot: {} (valid {}s more)",
                        now.as_secs_f64(),
                        cars[sender].name,
                        event.topic,
                        event.remaining_validity(now).as_millis() / 1000,
                    );
                }
                Action::SetTimer { kind, after } => {
                    if let Some(handle) = timers.remove(&(sender, kind)) {
                        queue.cancel(handle);
                    }
                    let handle =
                        queue.schedule(now + after, Happening::Timer { car: sender, kind });
                    timers.insert((sender, kind), handle);
                }
                Action::CancelTimer(kind) => {
                    if let Some(handle) = timers.remove(&(sender, kind)) {
                        queue.cancel(handle);
                    }
                }
            }
        }
    }

    for (car, actions) in pending {
        apply(car, actions, &mut cars, &mut queue, &mut timers, now);
    }

    while let Some((at, happening)) = queue.pop() {
        if at > end {
            break;
        }
        now = at;
        match happening {
            Happening::MobilityTick => {
                for car in cars.iter_mut() {
                    let Car {
                        mobility,
                        rng,
                        protocol,
                        ..
                    } = car;
                    mobility.advance(MOBILITY_TICK, rng);
                    protocol.update_speed(Some(mobility.speed()));
                }
                if now + MOBILITY_TICK <= end {
                    queue.schedule(now + MOBILITY_TICK, Happening::MobilityTick);
                }
            }
            Happening::Timer { car, kind } => {
                timers.remove(&(car, kind));
                let actions = cars[car].protocol.handle_timer_vec(kind, now);
                apply(car, actions, &mut cars, &mut queue, &mut timers, now);
            }
            Happening::LeaveParking {
                car,
                district,
                free_for,
            } => {
                let topic: Topic = format!(".parking.{district}").parse().expect("valid topic");
                println!(
                    "[{:>5.1}s] {} leaves a parking spot in the {} district (free for ~{}s)",
                    now.as_secs_f64(),
                    cars[car].name,
                    district,
                    free_for.as_millis() / 1000
                );
                let (_, actions) = cars[car].protocol.publish_vec(topic, free_for, 400, now);
                apply(car, actions, &mut cars, &mut queue, &mut timers, now);
            }
        }
    }

    println!("\n=== After {} simulated seconds ===", end.as_secs_f64());
    for car in &cars {
        let metrics = car.protocol.metrics();
        println!(
            "  {:<6} delivered {} spot announcement(s), saw {} duplicate(s), {} parasite(s)",
            car.name,
            metrics.events_delivered,
            metrics.duplicates_received,
            metrics.parasites_received
        );
    }
    println!("\nCars only stored and forwarded announcements for districts they care about —");
    println!("that is the frugality the paper is after.");
}
