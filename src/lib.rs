//! # frugal-repro — workspace facade
//!
//! Re-exports the seven crates of the reproduction of *"Frugal Event
//! Dissemination in a Mobile Environment"* (Baehni, Chhabra, Guerraoui —
//! Middleware 2005) so the top-level integration tests and examples have a
//! single anchor package:
//!
//! * [`simkit`] — discrete-event simulation kernel (time, scheduler, RNG, stats);
//! * [`pubsub`] — topics, events, subscriptions;
//! * [`frugal`] — the paper's dissemination protocol and the flooding baselines;
//! * [`mobility`] — random-waypoint and city-section mobility models;
//! * [`netsim`] — broadcast radio medium and propagation;
//! * [`manet_sim`] — scenario runner and per-figure experiments;
//! * [`bench`](mod@bench) — benchmark harness and figure-reproduction binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ::bench;
pub use frugal;
pub use manet_sim;
pub use mobility;
pub use netsim;
pub use pubsub;
pub use simkit;
